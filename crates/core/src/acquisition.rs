//! Trace acquisition: run the chip, couple the fields, digitize.
//!
//! Reproduces the bench flow of Sec. VI-A: the chip executes a scenario,
//! the selected sensor's EMF is synthesized from the activity via the
//! coupling matrix, the analog chain amplifies and digitizes, and the
//! spectrum-analyzer model renders 2000-point DC–120 MHz traces.

use crate::calib;
use crate::chip::{SensorSelect, TestChip};
use crate::error::CoreError;
use crate::scenario::Scenario;
use psa_analog::frontend::AnalogFrontEnd;
use psa_analog::specan::SpectrumAnalyzer;
use psa_field::induction::induced_emf;
use psa_gatesim::activity::ActivitySimulator;

/// A set of digitized records from one sensor under one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSet {
    /// Digitized records (ADC output volts), each
    /// `RECORD_CYCLES × SAMPLES_PER_CYCLE` samples.
    pub records: Vec<Vec<f64>>,
    /// Sample rate, Hz.
    pub fs_hz: f64,
    /// The sensing selection used.
    pub sensor: SensorSelect,
}

impl TraceSet {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records were captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records concatenated (for zero-span analysis over a longer
    /// observation).
    pub fn concatenated(&self) -> Vec<f64> {
        self.records.concat()
    }
}

/// The acquisition engine bound to a chip.
#[derive(Debug, Clone)]
pub struct Acquisition<'a> {
    chip: &'a TestChip,
    specan: SpectrumAnalyzer,
}

impl<'a> Acquisition<'a> {
    /// Creates an engine with the paper's spectrum-analyzer settings.
    pub fn new(chip: &'a TestChip) -> Self {
        Acquisition {
            chip,
            specan: SpectrumAnalyzer::date24(),
        }
    }

    /// The spectrum-analyzer model in use.
    pub fn specan(&self) -> &SpectrumAnalyzer {
        &self.specan
    }

    /// Acquires `n_records` consecutive records from `sensor` while the
    /// chip runs `scenario`.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors ([`CoreError`]) from the
    /// coupling lookup or analog chain; `n_records == 0` is invalid.
    pub fn acquire(
        &self,
        scenario: &Scenario,
        sensor: SensorSelect,
        n_records: usize,
    ) -> Result<TraceSet, CoreError> {
        self.acquire_len(scenario, sensor, n_records, calib::RECORD_CYCLES)
    }

    /// Like [`acquire`](Self::acquire) with an explicit record length in
    /// clock cycles. The literature-baseline detectors use the shorter
    /// records of their original setups (coarser RBW), which is part of
    /// why they miss small Trojans.
    ///
    /// # Errors
    ///
    /// Same as [`acquire`](Self::acquire); `record_cycles == 0` is
    /// invalid.
    pub fn acquire_len(
        &self,
        scenario: &Scenario,
        sensor: SensorSelect,
        n_records: usize,
        record_cycles: usize,
    ) -> Result<TraceSet, CoreError> {
        if n_records == 0 {
            return Err(CoreError::InvalidParameter {
                what: "record count must be at least 1",
            });
        }
        if record_cycles == 0 {
            return Err(CoreError::InvalidParameter {
                what: "record length must be at least 1 cycle",
            });
        }
        let fs = calib::sample_rate_hz();
        let couplings = self.chip.couplings_for(sensor)?;
        let noise_vrms =
            self.chip
                .sensor_noise_vrms(sensor, fs / 2.0, scenario.vdd, scenario.temp_c);
        let frontend = frontend_for(sensor, scenario.seed ^ 0xFE);

        let mut sim = ActivitySimulator::new(scenario.chip_config());
        if scenario.warmup_cycles > 0 {
            let _ = sim.advance(scenario.warmup_cycles);
        }

        let mut records = Vec::with_capacity(n_records);
        for rec_idx in 0..n_records {
            let trace = sim.advance(record_cycles);
            let currents = psa_gatesim::current::trace_to_currents(
                &trace,
                self.chip.charges_fc(),
                calib::CLK_HZ,
            );
            // Pair each source's current with its coupling (both follow
            // Source::ALL order).
            let pairs: Vec<(&[f64], f64)> = currents
                .iter()
                .zip(&couplings)
                .map(|((_, wave), &k)| (wave.as_slice(), k))
                .collect();
            let emf = induced_emf(&pairs, calib::EFFECTIVE_MOMENT_AREA_M2, fs)?;
            let digitized = frontend.capture_record(&emf, fs, noise_vrms, rec_idx as u64)?;
            records.push(digitized);
        }
        Ok(TraceSet {
            records,
            fs_hz: fs,
            sensor,
        })
    }

    /// Renders the averaged 2000-point spectrum (dB) of a trace set —
    /// one Fig 4 panel.
    ///
    /// # Errors
    ///
    /// Propagates spectrum errors for empty trace sets.
    pub fn spectrum_db(&self, traces: &TraceSet) -> Result<Vec<f64>, CoreError> {
        Ok(self
            .specan
            .averaged_trace_db(&traces.records, traces.fs_hz)?)
    }

    /// Convenience: acquire and render the averaged spectrum in one
    /// call, using the paper's five-trace averaging.
    ///
    /// # Errors
    ///
    /// Same as [`acquire`](Self::acquire) and
    /// [`spectrum_db`](Self::spectrum_db).
    pub fn averaged_spectrum_db(
        &self,
        scenario: &Scenario,
        sensor: SensorSelect,
    ) -> Result<Vec<f64>, CoreError> {
        let traces = self.acquire(scenario, sensor, calib::TRACES_PER_SPECTRUM)?;
        self.spectrum_db(&traces)
    }

    /// Full-FFT-resolution averaged amplitude spectrum in dB (one value
    /// per FFT bin up to Nyquist). The *detector* works at this
    /// resolution; the 2000-point [`spectrum_db`](Self::spectrum_db)
    /// trace is the human-facing display.
    ///
    /// # Errors
    ///
    /// Propagates spectrum errors for empty trace sets.
    pub fn fullres_spectrum_db(&self, traces: &TraceSet) -> Result<Vec<f64>, CoreError> {
        use psa_dsp::spectrum;
        if traces.records.is_empty() {
            return Err(CoreError::InvalidParameter {
                what: "trace set is empty",
            });
        }
        let linear: Vec<Vec<f64>> = traces
            .records
            .iter()
            .map(|r| spectrum::try_amplitude_spectrum(r, psa_dsp::window::Window::Hann))
            .collect::<Result<_, _>>()?;
        let avg = spectrum::average_traces(&linear)?;
        Ok(avg.into_iter().map(spectrum::amplitude_db).collect())
    }

    /// Frequency of full-resolution bin `k` for the standard record
    /// length.
    pub fn fullres_bin_hz(&self, k: usize) -> f64 {
        let n = calib::RECORD_CYCLES * calib::SAMPLES_PER_CYCLE;
        psa_dsp::fft::bin_freq(k, n, calib::sample_rate_hz())
    }

    /// Closest full-resolution bin to a frequency.
    pub fn fullres_freq_bin(&self, freq_hz: f64) -> usize {
        let n = calib::RECORD_CYCLES * calib::SAMPLES_PER_CYCLE;
        psa_dsp::fft::freq_bin(freq_hz, n, calib::sample_rate_hz())
    }

    /// Zero-span envelope of `center_hz` over `n_records` concatenated
    /// records — one Fig 5 panel.
    ///
    /// # Errors
    ///
    /// Same as [`acquire`](Self::acquire), plus zero-span configuration
    /// errors.
    pub fn zero_span(
        &self,
        scenario: &Scenario,
        sensor: SensorSelect,
        center_hz: f64,
        n_records: usize,
    ) -> Result<Vec<f64>, CoreError> {
        let traces = self.acquire(scenario, sensor, n_records)?;
        let signal = traces.concatenated();
        Ok(self
            .specan
            .zero_span_trace(&signal, traces.fs_hz, center_hz)?)
    }

    /// Zero-span with explicit resolution bandwidth (identification uses
    /// [`calib::IDENTIFY_RBW_HZ`] to reject the 3 MHz family neighbour
    /// and the AES block-rate lines).
    ///
    /// # Errors
    ///
    /// Same as [`zero_span`](Self::zero_span).
    pub fn zero_span_rbw(
        &self,
        scenario: &Scenario,
        sensor: SensorSelect,
        center_hz: f64,
        rbw_hz: f64,
        n_records: usize,
    ) -> Result<Vec<f64>, CoreError> {
        let traces = self.acquire(scenario, sensor, n_records)?;
        let signal = traces.concatenated();
        Ok(self
            .specan
            .zero_span_trace_rbw(&signal, traces.fs_hz, center_hz, rbw_hz)?)
    }
}

/// The measurement chain appropriate to a sensing selection: PSA
/// channels and the single coil use the PCB's THS4504 + RASC ADC; the
/// ICR probe set ships its own wide-band low-noise preamp.
fn frontend_for(sensor: SensorSelect, seed: u64) -> AnalogFrontEnd {
    match sensor {
        SensorSelect::IcrHh100 => AnalogFrontEnd::new(
            psa_analog::opamp::OpAmp {
                dc_gain: 31.62, // 30 dB
                gbw_hz: 1.5e9,
                vout_max: 3.3,
                input_noise_v_per_rthz: 1.5e-9,
            },
            psa_analog::adc::Adc::rasc(),
            seed,
        ),
        _ => AnalogFrontEnd::date24(seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_gatesim::trojan::TrojanKind;
    use std::sync::OnceLock;

    fn chip() -> &'static TestChip {
        static CHIP: OnceLock<TestChip> = OnceLock::new();
        CHIP.get_or_init(TestChip::date24)
    }

    #[test]
    fn acquires_requested_records() {
        let acq = Acquisition::new(chip());
        let t = acq
            .acquire(&Scenario::baseline(), SensorSelect::Psa(10), 3)
            .unwrap();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        for r in &t.records {
            assert_eq!(r.len(), calib::RECORD_CYCLES * calib::SAMPLES_PER_CYCLE);
        }
        assert_eq!(
            t.concatenated().len(),
            3 * calib::RECORD_CYCLES * calib::SAMPLES_PER_CYCLE
        );
    }

    #[test]
    fn zero_records_invalid() {
        let acq = Acquisition::new(chip());
        assert!(acq
            .acquire(&Scenario::baseline(), SensorSelect::Psa(0), 0)
            .is_err());
    }

    #[test]
    fn signal_beats_noise_on_sensor10() {
        let acq = Acquisition::new(chip());
        let sig = acq
            .acquire(&Scenario::baseline(), SensorSelect::Psa(10), 2)
            .unwrap();
        let noise = acq
            .acquire(&Scenario::noise(), SensorSelect::Psa(10), 2)
            .unwrap();
        let rms = |t: &TraceSet| {
            let all = t.concatenated();
            (all.iter().map(|v| v * v).sum::<f64>() / all.len() as f64).sqrt()
        };
        let snr = 20.0 * (rms(&sig) / rms(&noise)).log10();
        assert!(snr > 20.0, "snr {snr} dB");
    }

    #[test]
    fn spectrum_has_clock_harmonics() {
        let acq = Acquisition::new(chip());
        let spec = acq
            .averaged_spectrum_db(&Scenario::baseline(), SensorSelect::Psa(10))
            .unwrap();
        assert_eq!(spec.len(), 2000);
        let sa = acq.specan();
        let at = |f: f64| spec[sa.freq_point(f)];
        // 33 MHz clock line well above the floor between harmonics.
        let clock = at(33.0e6);
        let floor = at(25.0e6);
        assert!(clock > floor + 15.0, "clock {clock} dB vs floor {floor} dB");
    }

    #[test]
    fn trojan_sideband_appears_at_48mhz() {
        let acq = Acquisition::new(chip());
        let base = acq
            .averaged_spectrum_db(&Scenario::baseline(), SensorSelect::Psa(10))
            .unwrap();
        let active = acq
            .averaged_spectrum_db(
                &Scenario::trojan_active(TrojanKind::T4),
                SensorSelect::Psa(10),
            )
            .unwrap();
        let sa = acq.specan();
        let p48 = sa.freq_point(48.0e6);
        let excess = active[p48] - base[p48];
        assert!(excess > 10.0, "48 MHz sideband excess {excess} dB");
    }

    #[test]
    fn sensor0_sees_far_less_than_sensor10() {
        // The Fig 4a/4e contrast: the sensor over the Trojan sees a much
        // stronger emergent component than the empty-corner sensor. (The
        // point-dipole far-field leaves a residual line at sensor 0 that
        // the silicon's distributed return currents suppress further —
        // see EXPERIMENTS.md.)
        let acq = Acquisition::new(chip());
        let excess_at = |sensor: usize| {
            let t_base = acq
                .acquire(&Scenario::baseline(), SensorSelect::Psa(sensor), 3)
                .unwrap();
            let t_act = acq
                .acquire(
                    &Scenario::trojan_active(TrojanKind::T1),
                    SensorSelect::Psa(sensor),
                    3,
                )
                .unwrap();
            let base = acq.fullres_spectrum_db(&t_base).unwrap();
            let act = acq.fullres_spectrum_db(&t_act).unwrap();
            let b = acq.fullres_freq_bin(48.0e6);
            (b - 3..=b + 3)
                .map(|k| act[k] - base[k])
                .fold(f64::MIN, f64::max)
        };
        let e10 = excess_at(10);
        let e0 = excess_at(0);
        assert!(e10 > e0 + 6.0, "sensor 10 {e10} dB vs sensor 0 {e0} dB");
    }

    #[test]
    fn acquisition_is_deterministic() {
        let acq = Acquisition::new(chip());
        let s = Scenario::baseline().with_seed(33);
        let a = acq.acquire(&s, SensorSelect::Psa(5), 2).unwrap();
        let b = acq.acquire(&s, SensorSelect::Psa(5), 2).unwrap();
        assert_eq!(a, b);
    }
}
