//! The monitor session: a stream, a sliding detector, and the event
//! log that ties them together on the monitor-loop clock.

use crate::acquisition::AcqContext;
use crate::calib;
use crate::error::CoreError;
use crate::monitor::event::{MonitorEvent, MonitorEventKind};
use crate::monitor::report::MonitorReport;
use crate::monitor::sliding::SlidingDetector;
use crate::monitor::stream::StreamSource;
use crate::mttd::MonitorTiming;

/// A running monitor session.
///
/// Each [`step`](Self::step) processes one stream record across every
/// watched sensor: acquire, roll the window, render the spectrum,
/// compare, and emit cycle-stamped [`MonitorEvent`]s. The session holds
/// no acquisition scratch of its own — the caller threads a reusable
/// [`AcqContext`] through, so a whole session is one job on the
/// campaign engine with zero hot-path allocations.
#[derive(Debug)]
pub struct Monitor {
    stream: StreamSource,
    detector: SlidingDetector,
    timing: MonitorTiming,
    events: Vec<MonitorEvent>,
    next_record: usize,
    elapsed_s: f64,
}

impl Monitor {
    /// Ties a stream to a detector under the monitor-loop timing model.
    pub fn new(stream: StreamSource, detector: SlidingDetector, timing: MonitorTiming) -> Self {
        Monitor {
            stream,
            detector,
            timing,
            events: Vec::new(),
            next_record: 0,
            elapsed_s: 0.0,
        }
    }

    /// The stream being watched.
    pub fn stream(&self) -> &StreamSource {
        &self.stream
    }

    /// The detector state.
    pub fn detector(&self) -> &SlidingDetector {
        &self.detector
    }

    /// Monitor-loop wall time accumulated so far, seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// The next stream record to process.
    pub fn next_record(&self) -> usize {
        self.next_record
    }

    /// `true` once the stream's horizon is exhausted.
    pub fn finished(&self) -> bool {
        self.next_record >= self.stream.horizon()
    }

    /// Every event emitted so far, in emission order.
    pub fn events(&self) -> &[MonitorEvent] {
        &self.events
    }

    /// Consumes the session, returning its event log.
    pub fn into_events(self) -> Vec<MonitorEvent> {
        self.events
    }

    /// Processes one stream record across all lanes; returns the events
    /// emitted by this tick (possibly empty).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when the stream is exhausted;
    /// otherwise propagates acquisition/DSP errors.
    pub fn step(&mut self, ctx: &mut AcqContext<'_>) -> Result<&[MonitorEvent], CoreError> {
        if self.finished() {
            return Err(CoreError::InvalidParameter {
                what: "stream horizon exhausted",
            });
        }
        let record = self.next_record;
        let scenario = self.stream.schedule().scenario_at(record);
        let cycle = ((record + 1) * calib::RECORD_CYCLES) as u64;
        let before = self.events.len();
        let episode_open = self.detector.any_alarmed();

        let mut new_alarm = false;
        let mut tick = Vec::with_capacity(self.detector.lanes());
        for lane in 0..self.detector.lanes() {
            let obs = self.detector.observe(ctx, &self.stream, &scenario, lane)?;
            self.elapsed_s += self.timing.acquisition_s;
            self.elapsed_s += self.timing.processing_s;
            if obs.newly_alarmed {
                new_alarm = true;
                let bin = obs.top_bin.expect("newly alarmed lane has a top bin");
                self.events.push(MonitorEvent {
                    record,
                    cycle,
                    elapsed_s: self.elapsed_s,
                    sensor: obs.sensor,
                    kind: MonitorEventKind::Alarm {
                        excess_db: obs.top_excess_db,
                        freq_hz: ctx.fullres_bin_hz(bin),
                    },
                });
            }
            if obs.cleared {
                self.events.push(MonitorEvent {
                    record,
                    cycle,
                    elapsed_s: self.elapsed_s,
                    sensor: obs.sensor,
                    kind: MonitorEventKind::Clear,
                });
            }
            if obs.recalibrated {
                self.events.push(MonitorEvent {
                    record,
                    cycle,
                    elapsed_s: self.elapsed_s,
                    sensor: obs.sensor,
                    kind: MonitorEventKind::DriftRecalibrated,
                });
            }
            tick.push(obs);
        }
        if !episode_open && new_alarm {
            let sensor = self.localize(ctx, &tick);
            self.events.push(MonitorEvent {
                record,
                cycle,
                elapsed_s: self.elapsed_s,
                sensor,
                kind: MonitorEventKind::Localized,
            });
        }
        self.next_record += 1;
        Ok(&self.events[before..])
    }

    /// Localizes an alarm episode the way the batch analyzer does:
    /// choose the common emergent line — the hitting lanes' top bin
    /// nearest 48 MHz (the paper's sideband family) when one lies
    /// within ±5 MHz, else the strongest top bin — then rank the
    /// hitting lanes by *absolute* amplitude excess at that line. The
    /// first lane wins ties, deterministically.
    fn localize(&self, ctx: &AcqContext<'_>, tick: &[crate::monitor::LaneObservation]) -> usize {
        let hitting: Vec<(usize, &crate::monitor::LaneObservation)> =
            tick.iter().enumerate().filter(|(_, o)| o.hit).collect();
        let line_bin = crate::localize::pick_common_line(
            &hitting,
            |(_, o)| ctx.fullres_bin_hz(o.top_bin.expect("hitting lane has a top bin")),
            |(_, o)| o.top_excess_db,
        )
        .expect("an alarm implies a hitting lane")
        .1
        .top_bin
        .expect("hitting lane has a top bin");
        let mut best_sensor = hitting[0].1.sensor;
        let mut best_amp = f64::NEG_INFINITY;
        for (lane_idx, obs) in &hitting {
            let amp = self
                .detector
                .amplitude_excess_at(*lane_idx, &obs.spec, line_bin);
            if amp > best_amp {
                best_amp = amp;
                best_sensor = obs.sensor;
            }
        }
        best_sensor
    }

    /// Runs the stream to its horizon.
    ///
    /// # Errors
    ///
    /// Propagates the first failing tick's error.
    pub fn run_to_end(&mut self, ctx: &mut AcqContext<'_>) -> Result<(), CoreError> {
        while !self.finished() {
            self.step(ctx)?;
        }
        Ok(())
    }

    /// Aggregates the session's events into a [`MonitorReport`].
    pub fn report(&self, expected_sensor: Option<usize>) -> MonitorReport {
        MonitorReport::from_events(
            &self.events,
            self.stream.schedule(),
            &self.timing,
            self.detector.lanes(),
            expected_sensor,
        )
    }
}
