//! Session-level aggregation of the streaming monitor's events.

use crate::monitor::event::{MonitorEvent, MonitorEventKind};
use crate::monitor::schedule::ActivationSchedule;
use crate::mttd::MonitorTiming;
use std::fmt;

/// What one monitor session amounted to: the run-time MTTD, the
/// false-alarm count, and the localization verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorReport {
    /// Stream length, records.
    pub records: usize,
    /// Sensors watched per record.
    pub lanes: usize,
    /// First record with an active Trojan (`None`: Trojan-free stream).
    pub activation_record: Option<usize>,
    /// Whether an alarm fired at or after activation.
    pub detected: bool,
    /// Time from Trojan activation to the detecting alarm, seconds.
    pub mttd_s: Option<f64>,
    /// Stream records consumed from activation to the detecting alarm.
    pub traces_to_detect: Option<usize>,
    /// Total alarm events.
    pub alarms: usize,
    /// Alarm events fired while no Trojan was active.
    pub false_alarms: usize,
    /// Clear events.
    pub clears: usize,
    /// Rolling-baseline refreshes.
    pub recalibrations: usize,
    /// The sensor named by the first localization event.
    pub localized_sensor: Option<usize>,
    /// Whether the localized sensor matches the expected one (when an
    /// expectation was given and a localization happened).
    pub localization_correct: Option<bool>,
}

impl MonitorReport {
    /// Builds the report for one session from its event log.
    ///
    /// `expected_sensor` is the ground-truth closest sensor (sensor 10
    /// for the paper's chip), used to score localization accuracy.
    pub fn from_events(
        events: &[MonitorEvent],
        schedule: &ActivationSchedule,
        timing: &MonitorTiming,
        lanes: usize,
        expected_sensor: Option<usize>,
    ) -> Self {
        let activation_record = schedule.first_activation_record();
        let mut alarms = 0usize;
        let mut false_alarms = 0usize;
        let mut clears = 0usize;
        let mut recalibrations = 0usize;
        let mut localized_sensor = None;
        let mut detection: Option<&MonitorEvent> = None;
        for e in events {
            match e.kind {
                MonitorEventKind::Alarm { .. } => {
                    alarms += 1;
                    if schedule.trojan_active_at(e.record) {
                        if detection.is_none() {
                            detection = Some(e);
                        }
                    } else {
                        false_alarms += 1;
                    }
                }
                MonitorEventKind::Clear => clears += 1,
                MonitorEventKind::Localized => {
                    if localized_sensor.is_none() {
                        localized_sensor = Some(e.sensor);
                    }
                }
                MonitorEventKind::DriftRecalibrated => recalibrations += 1,
            }
        }

        // A lane can already be in alarm when the Trojan activates (a
        // false alarm whose flag never dropped). The detector emits
        // Alarm only on the quiet→alarmed transition, so that episode
        // produces no post-activation Alarm event — but the monitor IS
        // flagging: count it as an immediate detection (one trace, one
        // tick). Replay the pre-activation events to recover the state.
        let standing_at_activation = activation_record.is_some_and(|a| {
            let mut alarmed = std::collections::BTreeMap::new();
            for e in events.iter().filter(|e| e.record < a) {
                match e.kind {
                    MonitorEventKind::Alarm { .. } => alarmed.insert(e.sensor, true),
                    MonitorEventKind::Clear => alarmed.insert(e.sensor, false),
                    _ => continue,
                };
            }
            alarmed.values().any(|&s| s)
        });

        // The MTTD clock starts when the Trojan activates, i.e. at the
        // beginning of the activation record's monitor iteration.
        let per_tick_s = lanes as f64 * (timing.acquisition_s + timing.processing_s);
        let (mttd_s, traces_to_detect) = match (detection, activation_record) {
            _ if standing_at_activation => (Some(per_tick_s), Some(1)),
            (Some(e), Some(a)) => (
                Some(e.elapsed_s - a as f64 * per_tick_s),
                Some(e.record - a + 1),
            ),
            _ => (None, None),
        };
        MonitorReport {
            records: schedule.horizon(),
            lanes,
            activation_record,
            detected: standing_at_activation || detection.is_some(),
            mttd_s,
            traces_to_detect,
            alarms,
            false_alarms,
            clears,
            recalibrations,
            localized_sensor,
            localization_correct: expected_sensor
                .and_then(|want| localized_sensor.map(|got| got == want)),
        }
    }
}

impl fmt::Display for MonitorReport {
    /// One deterministic summary line per session.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "report: detected={} mttd={} traces={} alarms={} false={} clears={} recalib={} localized={} ok={}",
            if self.detected { "yes" } else { "no" },
            self.mttd_s
                .map(|s| format!("{:.3} ms", s * 1e3))
                .unwrap_or_else(|| "-".into()),
            self.traces_to_detect
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            self.alarms,
            self.false_alarms,
            self.clears,
            self.recalibrations,
            self.localized_sensor
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            self.localization_correct
                .map(|c| if c { "yes" } else { "no" }.to_string())
                .unwrap_or_else(|| "-".into()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::schedule::ScheduleChange;
    use crate::scenario::Scenario;
    use psa_gatesim::trojan::TrojanKind;

    fn event(record: usize, sensor: usize, kind: MonitorEventKind) -> MonitorEvent {
        MonitorEvent {
            record,
            cycle: ((record + 1) * crate::calib::RECORD_CYCLES) as u64,
            elapsed_s: (record + 1) as f64 * 650.0e-6,
            sensor,
            kind,
        }
    }

    #[test]
    fn report_scores_detection_and_localization() {
        let schedule = ActivationSchedule::trojan_at(TrojanKind::T1, 2, 8);
        let timing = MonitorTiming::default();
        let events = vec![
            event(
                3,
                10,
                MonitorEventKind::Alarm {
                    excess_db: 15.0,
                    freq_hz: 48.0e6,
                },
            ),
            event(3, 10, MonitorEventKind::Localized),
            event(6, 10, MonitorEventKind::Clear),
        ];
        let r = MonitorReport::from_events(&events, &schedule, &timing, 1, Some(10));
        assert!(r.detected);
        assert_eq!(r.activation_record, Some(2));
        assert_eq!(r.traces_to_detect, Some(2));
        assert_eq!(r.alarms, 1);
        assert_eq!(r.false_alarms, 0);
        assert_eq!(r.clears, 1);
        assert_eq!(r.localized_sensor, Some(10));
        assert_eq!(r.localization_correct, Some(true));
        // MTTD: elapsed at the alarm minus two pre-activation ticks.
        let per_tick = timing.acquisition_s + timing.processing_s;
        let want = 4.0 * 650.0e-6 - 2.0 * per_tick;
        assert!((r.mttd_s.unwrap() - want).abs() < 1e-12);
        let line = r.to_string();
        assert!(line.contains("detected=yes"));
        assert!(line.contains("localized=10"));
    }

    #[test]
    fn standing_pre_activation_alarm_counts_as_immediate_detection() {
        // The flag went up before activation (false alarm) and never
        // cleared: no post-activation Alarm event exists, but the
        // monitor is flagging when the Trojan activates — one trace,
        // one tick.
        let schedule = ActivationSchedule::trojan_at(TrojanKind::T4, 4, 10);
        let timing = MonitorTiming::default();
        let events = vec![event(
            1,
            10,
            MonitorEventKind::Alarm {
                excess_db: 12.0,
                freq_hz: 66.0e6,
            },
        )];
        let r = MonitorReport::from_events(&events, &schedule, &timing, 1, None);
        assert!(r.detected);
        assert_eq!(r.traces_to_detect, Some(1));
        let per_tick = timing.acquisition_s + timing.processing_s;
        assert_eq!(r.mttd_s, Some(per_tick));
        assert_eq!(r.false_alarms, 1, "the pre-activation alarm stays false");

        // A Clear before activation drops the flag: no detection.
        let cleared = vec![events[0].clone(), event(2, 10, MonitorEventKind::Clear)];
        let r = MonitorReport::from_events(&cleared, &schedule, &timing, 1, None);
        assert!(!r.detected);
        assert_eq!(r.mttd_s, None);
    }

    #[test]
    fn pre_activation_alarms_are_false_alarms() {
        // The flicker clears before activation, so it neither detects
        // (no standing flag) nor suppresses later scoring.
        let schedule = ActivationSchedule::trojan_at(TrojanKind::T2, 4, 8);
        let events = vec![
            event(
                1,
                0,
                MonitorEventKind::Alarm {
                    excess_db: 11.0,
                    freq_hz: 33.0e6,
                },
            ),
            event(2, 0, MonitorEventKind::Clear),
        ];
        let r =
            MonitorReport::from_events(&events, &schedule, &MonitorTiming::default(), 2, Some(10));
        assert!(!r.detected);
        assert_eq!(r.false_alarms, 1);
        assert_eq!(r.mttd_s, None);
        assert_eq!(r.localization_correct, None);
        assert!(r.to_string().contains("mttd=-"));
    }

    #[test]
    fn trojan_free_stream_counts_everything_as_false() {
        let schedule = ActivationSchedule::constant(Scenario::baseline(), 6).step(
            1,
            ScheduleChange::RampVdd {
                to: 1.1,
                over_records: 3,
            },
        );
        let events = vec![
            event(2, 5, MonitorEventKind::DriftRecalibrated),
            event(
                4,
                5,
                MonitorEventKind::Alarm {
                    excess_db: 12.0,
                    freq_hz: 66.0e6,
                },
            ),
        ];
        let r = MonitorReport::from_events(&events, &schedule, &MonitorTiming::default(), 1, None);
        assert_eq!(r.activation_record, None);
        assert!(!r.detected);
        assert_eq!(r.false_alarms, 1);
        assert_eq!(r.recalibrations, 1);
    }
}
