//! Activation schedules: what happens *to* the chip while the stream
//! runs.
//!
//! The batch evaluation fixes one [`Scenario`] per campaign; the
//! run-time monitor instead watches a live chip whose state changes
//! under it — a Trojan's trigger fires mid-stream, the supply drifts, an
//! operator rotates the AES key. An [`ActivationSchedule`] scripts those
//! changes on the record clock: record `r` of the stream is acquired
//! under [`ActivationSchedule::scenario_at`]`(r)`, a **pure function**
//! of the record index, which is what keeps whole monitor sessions
//! deterministic (and fan-out-safe) on the campaign engine.

use crate::scenario::Scenario;
use psa_gatesim::trojan::TrojanKind;

/// One scripted change to the chip's operating state.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleChange {
    /// The Trojan's trigger condition fires: its payload activates.
    TrojanOn(TrojanKind),
    /// The Trojan's payload deactivates (trigger window ends).
    TrojanOff(TrojanKind),
    /// Supply voltage steps to a new value, V.
    SetVdd(f64),
    /// Ambient temperature steps to a new value, °C.
    SetTempC(f64),
    /// Supply voltage ramps linearly from its current value to `to`
    /// over `over_records` stream records (an operating-condition
    /// drift; `over_records == 0` steps immediately).
    RampVdd {
        /// Target supply voltage, V.
        to: f64,
        /// Records the ramp spans.
        over_records: usize,
    },
    /// Ambient temperature ramps linearly from its current value to
    /// `to` over `over_records` stream records.
    RampTempC {
        /// Target temperature, °C.
        to: f64,
        /// Records the ramp spans.
        over_records: usize,
    },
    /// The AES key is rotated (a legitimate run-time event the monitor
    /// must *not* flag).
    SetKey([u8; 16]),
}

/// A [`ScheduleChange`] pinned to the stream record at which it takes
/// effect.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleStep {
    /// Record index (0-based) from which the change applies.
    pub at_record: usize,
    /// The change itself.
    pub change: ScheduleChange,
}

/// A linear ramp in progress.
#[derive(Debug, Clone, Copy)]
struct Ramp {
    start_record: usize,
    from: f64,
    to: f64,
    over_records: usize,
}

impl Ramp {
    fn value_at(&self, record: usize) -> f64 {
        if self.over_records == 0 || record >= self.start_record + self.over_records {
            return self.to;
        }
        let frac = (record - self.start_record) as f64 / self.over_records as f64;
        self.from + (self.to - self.from) * frac
    }

    fn done_at(&self, record: usize) -> bool {
        record >= self.start_record + self.over_records
    }
}

/// A scripted stream: a base [`Scenario`], a horizon in records, and
/// the changes applied along the way.
///
/// # Example
///
/// ```
/// use psa_core::monitor::{ActivationSchedule, ScheduleChange};
/// use psa_core::scenario::Scenario;
/// use psa_gatesim::trojan::TrojanKind;
///
/// let s = ActivationSchedule::constant(Scenario::baseline(), 8)
///     .step(3, ScheduleChange::TrojanOn(TrojanKind::T1));
/// assert_eq!(s.first_activation_record(), Some(3));
/// assert!(s.scenario_at(2).trojan.is_none());
/// assert_eq!(s.scenario_at(3).trojan, Some(TrojanKind::T1));
/// // Per-record seeds advance deterministically from the base seed.
/// assert_eq!(s.scenario_at(5).seed, s.base().seed + 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationSchedule {
    base: Scenario,
    horizon: usize,
    steps: Vec<ScheduleStep>,
}

impl ActivationSchedule {
    /// A schedule that holds `base` unchanged for `horizon` records —
    /// the shape under which the streaming monitor coincides
    /// bit-for-bit with the batch [`mttd_trial`](crate::mttd::mttd_trial)
    /// replay.
    pub fn constant(base: Scenario, horizon: usize) -> Self {
        ActivationSchedule {
            base,
            horizon,
            steps: Vec::new(),
        }
    }

    /// Convenience: a quiet baseline stream on which `kind` activates at
    /// `at_record`.
    pub fn trojan_at(kind: TrojanKind, at_record: usize, horizon: usize) -> Self {
        ActivationSchedule::constant(Scenario::baseline(), horizon)
            .step(at_record, ScheduleChange::TrojanOn(kind))
    }

    /// Appends a scripted change (kept sorted by record; changes at the
    /// same record apply in insertion order).
    pub fn step(mut self, at_record: usize, change: ScheduleChange) -> Self {
        let insert_at = self
            .steps
            .iter()
            .position(|s| s.at_record > at_record)
            .unwrap_or(self.steps.len());
        self.steps
            .insert(insert_at, ScheduleStep { at_record, change });
        self
    }

    /// Overrides the base scenario's seed (per-session seeding for
    /// multi-seed campaigns; record seeds derive from it).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base.seed = seed;
        self
    }

    /// The base scenario the stream starts from.
    pub fn base(&self) -> &Scenario {
        &self.base
    }

    /// Stream length in records.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// The scripted changes, sorted by record.
    pub fn steps(&self) -> &[ScheduleStep] {
        &self.steps
    }

    /// The effective scenario of stream record `record`: the base with
    /// every change at or before `record` applied, ramps interpolated,
    /// and the record-advanced seed (`base.seed + record`) — exactly the
    /// per-trace seeding of the batch MTTD replay.
    pub fn scenario_at(&self, record: usize) -> Scenario {
        let mut scenario = self.base.clone();
        // Deduplicated: a base scenario listing a kind as both primary
        // and extra must not re-emit the duplicate at every record.
        let mut active: Vec<TrojanKind> = scenario.active_trojans();
        let mut vdd_ramp: Option<Ramp> = None;
        let mut temp_ramp: Option<Ramp> = None;

        // Walk the record clock so ramps capture the value current at
        // their own start, whatever earlier steps did.
        for r in 0..=record {
            for s in self.steps.iter().filter(|s| s.at_record == r) {
                match s.change {
                    ScheduleChange::TrojanOn(k) => {
                        if !active.contains(&k) {
                            active.push(k);
                        }
                    }
                    ScheduleChange::TrojanOff(k) => active.retain(|&a| a != k),
                    ScheduleChange::SetVdd(v) => {
                        scenario.vdd = v;
                        vdd_ramp = None;
                    }
                    ScheduleChange::SetTempC(t) => {
                        scenario.temp_c = t;
                        temp_ramp = None;
                    }
                    ScheduleChange::RampVdd { to, over_records } => {
                        vdd_ramp = Some(Ramp {
                            start_record: r,
                            from: scenario.vdd,
                            to,
                            over_records,
                        });
                    }
                    ScheduleChange::RampTempC { to, over_records } => {
                        temp_ramp = Some(Ramp {
                            start_record: r,
                            from: scenario.temp_c,
                            to,
                            over_records,
                        });
                    }
                    ScheduleChange::SetKey(key) => scenario.key = key,
                }
            }
            if let Some(ramp) = vdd_ramp {
                scenario.vdd = ramp.value_at(r);
                if ramp.done_at(r) {
                    vdd_ramp = None;
                }
            }
            if let Some(ramp) = temp_ramp {
                scenario.temp_c = ramp.value_at(r);
                if ramp.done_at(r) {
                    temp_ramp = None;
                }
            }
        }

        scenario.trojan = active.first().copied();
        scenario.extra_trojans = if active.len() > 1 {
            active[1..].to_vec()
        } else {
            Vec::new()
        };
        let seed = scenario.seed.wrapping_add(record as u64);
        scenario.with_seed(seed)
    }

    /// Whether any Trojan payload is active during record `record`.
    pub fn trojan_active_at(&self, record: usize) -> bool {
        self.scenario_at(record).trojan.is_some()
    }

    /// The first record with an active Trojan (the MTTD clock's zero),
    /// or `None` for a Trojan-free stream.
    pub fn first_activation_record(&self) -> Option<usize> {
        (0..self.horizon).find(|&r| self.trojan_active_at(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_reproduces_batch_seeding() {
        let base = Scenario::trojan_active(TrojanKind::T3).with_seed(42);
        let s = ActivationSchedule::constant(base.clone(), 5);
        for r in 0..5 {
            let expect = base.clone().with_seed(base.seed + r as u64);
            assert_eq!(s.scenario_at(r), expect);
        }
        assert_eq!(s.first_activation_record(), Some(0));
    }

    #[test]
    fn trojan_toggles_on_and_off() {
        let s = ActivationSchedule::constant(Scenario::baseline(), 10)
            .step(2, ScheduleChange::TrojanOn(TrojanKind::T2))
            .step(5, ScheduleChange::TrojanOff(TrojanKind::T2));
        assert!(!s.trojan_active_at(1));
        assert!(s.trojan_active_at(2));
        assert!(s.trojan_active_at(4));
        assert!(!s.trojan_active_at(5));
        assert_eq!(s.first_activation_record(), Some(2));
    }

    #[test]
    fn multi_trojan_overlap_orders_primary_first() {
        let s = ActivationSchedule::constant(Scenario::baseline(), 8)
            .step(1, ScheduleChange::TrojanOn(TrojanKind::T1))
            .step(3, ScheduleChange::TrojanOn(TrojanKind::T4))
            .step(5, ScheduleChange::TrojanOff(TrojanKind::T1));
        let at4 = s.scenario_at(4);
        assert_eq!(at4.trojan, Some(TrojanKind::T1));
        assert_eq!(at4.extra_trojans, vec![TrojanKind::T4]);
        let at5 = s.scenario_at(5);
        assert_eq!(at5.trojan, Some(TrojanKind::T4));
        assert!(at5.extra_trojans.is_empty());
    }

    #[test]
    fn duplicate_trojan_on_is_idempotent() {
        let s = ActivationSchedule::constant(Scenario::baseline(), 8)
            .step(1, ScheduleChange::TrojanOn(TrojanKind::T3))
            .step(2, ScheduleChange::TrojanOn(TrojanKind::T3));
        let at3 = s.scenario_at(3);
        assert_eq!(at3.trojan, Some(TrojanKind::T3));
        assert!(at3.extra_trojans.is_empty());
    }

    #[test]
    fn base_scenario_duplicates_are_deduped_per_record() {
        // A base scenario that lists one kind as both primary and extra
        // (possible through direct field construction) must not
        // double-activate it at every stream record.
        let base = Scenario {
            trojan: Some(TrojanKind::T2),
            extra_trojans: vec![TrojanKind::T2, TrojanKind::T4],
            ..Scenario::baseline()
        };
        let s = ActivationSchedule::constant(base, 4)
            .step(2, ScheduleChange::TrojanOff(TrojanKind::T4));
        let at1 = s.scenario_at(1);
        assert_eq!(at1.trojan, Some(TrojanKind::T2));
        assert_eq!(at1.extra_trojans, vec![TrojanKind::T4]);
        // TrojanOff removes the (single) activation entirely.
        let at2 = s.scenario_at(2);
        assert_eq!(at2.trojan, Some(TrojanKind::T2));
        assert!(at2.extra_trojans.is_empty());
    }

    #[test]
    fn vdd_ramp_interpolates_linearly() {
        let s = ActivationSchedule::constant(Scenario::baseline(), 10).step(
            2,
            ScheduleChange::RampVdd {
                to: 1.2,
                over_records: 4,
            },
        );
        assert_eq!(s.scenario_at(1).vdd, 1.0);
        assert_eq!(s.scenario_at(2).vdd, 1.0);
        assert!((s.scenario_at(4).vdd - 1.1).abs() < 1e-12);
        assert_eq!(s.scenario_at(6).vdd, 1.2);
        assert_eq!(s.scenario_at(9).vdd, 1.2);
    }

    #[test]
    fn temp_ramp_and_step_interact() {
        let s = ActivationSchedule::constant(Scenario::baseline(), 10)
            .step(
                1,
                ScheduleChange::RampTempC {
                    to: 85.0,
                    over_records: 4,
                },
            )
            .step(3, ScheduleChange::SetTempC(0.0));
        // The step cancels the ramp.
        assert_eq!(s.scenario_at(3).temp_c, 0.0);
        assert_eq!(s.scenario_at(9).temp_c, 0.0);
        // Before the step the ramp had started from 25 °C.
        assert!((s.scenario_at(2).temp_c - 40.0).abs() < 1e-9);
    }

    #[test]
    fn key_rotation_applies_from_its_record() {
        let s = ActivationSchedule::constant(Scenario::baseline(), 6)
            .step(3, ScheduleChange::SetKey([7; 16]));
        assert_eq!(s.scenario_at(2).key, Scenario::DEFAULT_KEY);
        assert_eq!(s.scenario_at(3).key, [7; 16]);
    }

    #[test]
    fn steps_sort_by_record_with_stable_same_record_order() {
        let s = ActivationSchedule::constant(Scenario::baseline(), 8)
            .step(5, ScheduleChange::SetVdd(1.1))
            .step(1, ScheduleChange::SetVdd(0.9))
            .step(5, ScheduleChange::SetVdd(1.2));
        let records: Vec<usize> = s.steps().iter().map(|st| st.at_record).collect();
        assert_eq!(records, vec![1, 5, 5]);
        // Same-record steps apply in insertion order: the later 1.2 wins.
        assert_eq!(s.scenario_at(5).vdd, 1.2);
    }

    #[test]
    fn with_seed_rebases_per_record_seeds() {
        let s = ActivationSchedule::constant(Scenario::baseline(), 4).with_seed(900);
        assert_eq!(s.scenario_at(0).seed, 900);
        assert_eq!(s.scenario_at(3).seed, 903);
    }

    #[test]
    fn trojan_free_stream_has_no_activation() {
        let s = ActivationSchedule::constant(Scenario::baseline(), 6);
        assert_eq!(s.first_activation_record(), None);
    }
}
