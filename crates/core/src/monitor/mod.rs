//! Streaming run-time monitor (paper Sec. II-A): online detection from
//! a continuous record stream, golden-model free.
//!
//! The batch pipeline ([`cross_domain`](crate::cross_domain),
//! [`mttd`](crate::mttd)) replays a fixed number of pre-described
//! records; this module watches a *live* chip the way the paper's
//! deployed array does. The pieces:
//!
//! * [`ActivationSchedule`] — scripts what happens to the chip on the
//!   record clock: Trojan triggers firing and ending, VDD/temperature
//!   drift ramps, AES key rotations, multi-Trojan overlap. Record `r`'s
//!   effective [`Scenario`](crate::scenario::Scenario) is a pure
//!   function of `r`, which keeps sessions deterministic.
//! * [`StreamSource`] — pulls records one at a time from the chip under
//!   the schedule, through a reusable
//!   [`AcqContext`](crate::acquisition::AcqContext) (zero hot-path
//!   allocations in steady state).
//! * [`SlidingDetector`] — per-sensor rolling spectra over a ring
//!   buffer, compared against (optionally rolling) baseline envelopes.
//! * [`Monitor`] — the session loop, emitting cycle-stamped
//!   [`MonitorEvent`]s (`Alarm`, `Clear`, `Localized`,
//!   `DriftRecalibrated`).
//! * [`MonitorReport`] — MTTD / false-alarm / localization aggregation
//!   per session.
//!
//! With a constant schedule, a frozen baseline, and one watched sensor,
//! a session is **bit-identical** to the batch
//! [`mttd_trial`](crate::mttd::mttd_trial) replay — which is now
//! implemented as a thin adapter over this path.

pub mod event;
pub mod report;
pub mod schedule;
pub mod session;
pub mod sliding;
pub mod stream;

pub use event::{MonitorEvent, MonitorEventKind};
pub use report::MonitorReport;
pub use schedule::{ActivationSchedule, ScheduleChange, ScheduleStep};
pub use session::Monitor;
pub use sliding::{LaneObservation, SlidingConfig, SlidingDetector, SpectrumUpdate};
pub use stream::StreamSource;
