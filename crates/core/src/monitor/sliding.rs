//! The sliding detector: per-sensor rolling spectra compared against
//! (optionally rolling) baseline envelopes.

use crate::acquisition::{AcqContext, TraceSet};
use crate::calib;
use crate::cross_domain::Baseline;
use crate::error::CoreError;
use crate::monitor::stream::StreamSource;
use crate::scenario::Scenario;
use psa_dsp::peak;
use psa_dsp::sliding::{SlidingMode, SlidingSpectrum};

/// How a lane maintains its rolling window-averaged spectrum.
///
/// Either way, each stream tick transforms only the **newly pulled
/// record** (one FFT) and reuses cached per-record amplitude rows for
/// the rest of the window — the batch path's one-FFT-per-window-record
/// cost is gone from the steady state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpectrumUpdate {
    /// Re-sum the cached rows every tick. The summation order matches
    /// the batch window recompute exactly, so spectra — and therefore
    /// monitor event logs — are **bit-identical** to the pre-caching
    /// implementation. The default.
    #[default]
    CachedExact,
    /// Sliding-DFT-style `O(bins)` accumulator update (one add and one
    /// subtract per bin per tick), with an exact recompute every
    /// `resync_every` ticks to bound floating-point drift. Opt-in:
    /// spectra can differ from the batch path in the last few ulp
    /// between resyncs (drift is bounded by tests in
    /// [`psa_dsp::sliding`]).
    Incremental {
        /// Ticks between forced exact recomputes (≥ 1).
        resync_every: usize,
    },
}

impl SpectrumUpdate {
    /// The DSP-layer mode implementing this policy.
    fn mode(self) -> SlidingMode {
        match self {
            SpectrumUpdate::CachedExact => SlidingMode::Exact,
            SpectrumUpdate::Incremental { resync_every } => {
                SlidingMode::Incremental { resync_every }
            }
        }
    }
}

/// Configuration of the sliding detector.
///
/// The defaults coincide exactly with the batch
/// [`mttd_trial`](crate::mttd::mttd_trial) comparison (5-record rolling
/// window, 10 dB threshold, 8-bin baseline envelope, immediate clear,
/// frozen baseline), which is what makes the batch path a thin adapter
/// over this one.
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingConfig {
    /// Records in the rolling averaging window (ring buffer depth).
    pub window_records: usize,
    /// Records the window must hold before comparisons start (warm-fill
    /// suppression): a single-record spectrum compared against an
    /// averaged baseline can flicker past the threshold on a quiet
    /// noise-floor sensor. `1` compares from the very first record —
    /// the batch-compatible setting.
    pub min_window_records: usize,
    /// Emergent-component threshold, dB over the baseline envelope.
    pub threshold_db: f64,
    /// Half-width of the local-max envelope applied to the baseline
    /// (flicker immunity, as in the batch analyzer).
    pub envelope_half_window: usize,
    /// Consecutive quiet ticks before an alarmed sensor clears.
    pub clear_after_quiet: usize,
    /// Quiet ticks between rolling-baseline refreshes; `None` freezes
    /// the learned baseline (the batch-compatible setting). Refreshing
    /// absorbs slow operating-condition drift instead of alarming on
    /// it.
    pub recalibrate_after: Option<usize>,
    /// How the window-averaged spectrum is maintained between ticks
    /// (cached-row exact re-sum by default; opt-in `O(bins)`
    /// incremental accumulator).
    pub spectrum_update: SpectrumUpdate,
}

impl Default for SlidingConfig {
    fn default() -> Self {
        SlidingConfig {
            window_records: calib::TRACES_PER_SPECTRUM,
            min_window_records: 1,
            threshold_db: calib::DETECTION_THRESHOLD_DB,
            envelope_half_window: 8,
            clear_after_quiet: 1,
            recalibrate_after: None,
            spectrum_update: SpectrumUpdate::CachedExact,
        }
    }
}

/// One watched sensor's streaming state.
#[derive(Debug)]
struct Lane {
    sensor: usize,
    /// Rolling record window; evicted record buffers are recycled
    /// through `fresh` so the steady-state stream never allocates.
    window: TraceSet,
    fresh: TraceSet,
    /// Cached per-record amplitude rows mirroring `window` (one FFT per
    /// tick; the window average is maintained from these).
    rows: SlidingSpectrum,
    base_env: Vec<f64>,
    alarmed: bool,
    quiet_ticks: usize,
    quiet_since_recalib: usize,
}

/// What one lane saw during one stream tick.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneObservation {
    /// The lane's sensor.
    pub sensor: usize,
    /// Whether any bin exceeded the threshold this tick.
    pub hit: bool,
    /// Whether this tick started an alarm on this lane.
    pub newly_alarmed: bool,
    /// Whether this tick cleared a standing alarm.
    pub cleared: bool,
    /// Whether the rolling baseline was refreshed this tick.
    pub recalibrated: bool,
    /// Strongest emergent bin, when `hit`.
    pub top_bin: Option<usize>,
    /// Excess of the strongest emergent bin, dB.
    pub top_excess_db: f64,
    /// The tick's full-resolution spectrum (dB), for cross-lane
    /// localization at a common line.
    pub spec: Vec<f64>,
}

/// The streaming detector: a ring-buffered rolling spectrum per watched
/// sensor, compared each tick against that sensor's baseline envelope.
#[derive(Debug)]
pub struct SlidingDetector {
    config: SlidingConfig,
    lanes: Vec<Lane>,
}

impl SlidingDetector {
    /// Builds a detector watching `sensors`, seeded from the learned
    /// run-time `baseline`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when `sensors` is empty, the
    /// window is zero, or the baseline lacks a watched sensor.
    pub fn new(
        baseline: &Baseline,
        sensors: &[usize],
        config: SlidingConfig,
    ) -> Result<Self, CoreError> {
        if sensors.is_empty() {
            return Err(CoreError::InvalidParameter {
                what: "monitor needs at least one sensor",
            });
        }
        if config.window_records == 0 {
            return Err(CoreError::InvalidParameter {
                what: "rolling window must hold at least one record",
            });
        }
        if config.min_window_records > config.window_records {
            return Err(CoreError::InvalidParameter {
                what: "warm-fill minimum exceeds the rolling window depth",
            });
        }
        if matches!(
            config.spectrum_update,
            SpectrumUpdate::Incremental { resync_every: 0 }
        ) {
            return Err(CoreError::InvalidParameter {
                what: "incremental spectrum resync interval must be at least one tick",
            });
        }
        let lanes = sensors
            .iter()
            .map(|&sensor| {
                let base =
                    baseline
                        .per_sensor_db
                        .get(sensor)
                        .ok_or(CoreError::InvalidParameter {
                            what: "baseline missing monitored sensor",
                        })?;
                Ok(Lane {
                    sensor,
                    window: TraceSet::default(),
                    fresh: TraceSet::default(),
                    rows: SlidingSpectrum::new(
                        config.window_records,
                        config.spectrum_update.mode(),
                    )?,
                    base_env: peak::local_max_envelope(base, config.envelope_half_window),
                    alarmed: false,
                    quiet_ticks: 0,
                    quiet_since_recalib: 0,
                })
            })
            .collect::<Result<Vec<_>, CoreError>>()?;
        Ok(SlidingDetector { config, lanes })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SlidingConfig {
        &self.config
    }

    /// Number of watched sensors.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The watched sensor indices, in lane order.
    pub fn sensors(&self) -> Vec<usize> {
        self.lanes.iter().map(|l| l.sensor).collect()
    }

    /// Whether any lane currently holds a standing alarm.
    pub fn any_alarmed(&self) -> bool {
        self.lanes.iter().any(|l| l.alarmed)
    }

    /// Processes one stream tick for lane `lane_idx`: pull the record,
    /// roll the window, render the spectrum, compare, and update the
    /// alarm / recalibration state machine.
    ///
    /// The acquisition→comparison sequence is bit-identical to one
    /// iteration of the batch MTTD replay loop.
    ///
    /// # Errors
    ///
    /// Propagates acquisition/DSP errors.
    ///
    /// # Panics
    ///
    /// Panics if `lane_idx` is out of range.
    pub fn observe(
        &mut self,
        ctx: &mut AcqContext<'_>,
        stream: &StreamSource,
        scenario: &Scenario,
        lane_idx: usize,
    ) -> Result<LaneObservation, CoreError> {
        let lane = &mut self.lanes[lane_idx];
        stream.pull_scenario_into(ctx, scenario, lane.sensor, &mut lane.fresh)?;
        roll_window(
            &mut lane.window,
            &mut lane.fresh,
            self.config.window_records,
        );
        // Transform only the record that just entered the window; the
        // cached rows of the older records are reused, so a steady-state
        // tick costs one FFT instead of `window_records`.
        {
            let newest = lane
                .window
                .records
                .last()
                .expect("roll_window always leaves at least one record");
            let row = ctx.fullres_amplitude_row(newest)?;
            lane.rows.push_row(row)?;
        }
        if lane.window.records.len() < self.config.min_window_records {
            // Warm fill: the window is still too shallow for a stable
            // spectrum; no comparison, no state-machine movement.
            return Ok(LaneObservation {
                sensor: lane.sensor,
                hit: false,
                newly_alarmed: false,
                cleared: false,
                recalibrated: false,
                top_bin: None,
                top_excess_db: 0.0,
                spec: Vec::new(),
            });
        }
        // Window average from the cached rows — bit-identical to
        // `ctx.fullres_spectrum_db(&lane.window)` in the default
        // `CachedExact` mode (a regression test replays whole sessions
        // against the full recompute).
        let spec = lane.rows.averaged_db()?;
        let hits = peak::excess_over_baseline_db(&spec, &lane.base_env, self.config.threshold_db);

        let mut obs = LaneObservation {
            sensor: lane.sensor,
            hit: !hits.is_empty(),
            newly_alarmed: false,
            cleared: false,
            recalibrated: false,
            top_bin: None,
            top_excess_db: 0.0,
            spec: Vec::new(),
        };
        if let Some((bin, excess)) = top_hit(&hits) {
            lane.quiet_ticks = 0;
            lane.quiet_since_recalib = 0;
            obs.top_bin = Some(bin);
            obs.top_excess_db = excess;
            if !lane.alarmed {
                lane.alarmed = true;
                obs.newly_alarmed = true;
            }
        } else {
            lane.quiet_ticks += 1;
            lane.quiet_since_recalib += 1;
            if lane.alarmed && lane.quiet_ticks >= self.config.clear_after_quiet {
                lane.alarmed = false;
                obs.cleared = true;
            }
            if let Some(every) = self.config.recalibrate_after {
                if !lane.alarmed && lane.quiet_since_recalib >= every {
                    lane.base_env =
                        peak::local_max_envelope(&spec, self.config.envelope_half_window);
                    lane.quiet_since_recalib = 0;
                    obs.recalibrated = true;
                }
            }
        }
        obs.spec = spec;
        Ok(obs)
    }

    /// Absolute linear-amplitude excess of lane `lane_idx`'s spectrum
    /// over its baseline envelope around `bin` (±3 bins, clamped at
    /// zero) — the cross-lane localization ranking quantity, mirroring
    /// the batch analyzer: the sensor with the strongest *absolute*
    /// coupling to the common emergent line is the closest one,
    /// regardless of how quiet its own floor is.
    ///
    /// # Panics
    ///
    /// Panics if `lane_idx` is out of range.
    pub fn amplitude_excess_at(&self, lane_idx: usize, spec: &[f64], bin: usize) -> f64 {
        crate::localize::amplitude_excess_at_line(spec, &self.lanes[lane_idx].base_env, bin)
    }
}

/// The maximum-excess hit: "top" means the strongest bin, not the
/// lowest-frequency one. [`peak::excess_over_baseline_db`] documents a
/// descending-excess sort, but the report quantity must not silently
/// depend on a neighbour module's ordering contract.
fn top_hit(hits: &[(usize, f64)]) -> Option<(usize, f64)> {
    hits.iter().copied().max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Rolls one pulled record (`fresh.records[0]`) into the window.
///
/// During warm fill the window still needs a slot of its own, so the
/// pulled samples are *copied* in and `fresh` keeps its buffer — a
/// `mem::take` here would leave `fresh` empty and force the next pull to
/// re-allocate. Once the window is full, the oldest record's buffer is
/// swapped out through `fresh`, so steady-state ticks never allocate.
fn roll_window(window: &mut TraceSet, fresh: &mut TraceSet, window_records: usize) {
    window.fs_hz = fresh.fs_hz;
    window.sensor = fresh.sensor;
    if window.records.len() < window_records {
        window.records.push(fresh.records[0].clone());
    } else {
        let mut oldest = window.records.remove(0);
        std::mem::swap(&mut oldest, &mut fresh.records[0]);
        window.records.push(oldest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_coincides_with_batch_mttd() {
        let c = SlidingConfig::default();
        assert_eq!(c.window_records, calib::TRACES_PER_SPECTRUM);
        assert_eq!(c.min_window_records, 1);
        assert_eq!(c.threshold_db, calib::DETECTION_THRESHOLD_DB);
        assert_eq!(c.envelope_half_window, 8);
        assert_eq!(c.clear_after_quiet, 1);
        assert_eq!(c.recalibrate_after, None);
        assert_eq!(c.spectrum_update, SpectrumUpdate::CachedExact);
    }

    #[test]
    fn rejects_zero_resync_interval() {
        let baseline = Baseline {
            per_sensor_db: vec![vec![0.0; 8]],
        };
        let bad = SlidingConfig {
            spectrum_update: SpectrumUpdate::Incremental { resync_every: 0 },
            ..SlidingConfig::default()
        };
        assert!(SlidingDetector::new(&baseline, &[0], bad).is_err());
        let ok = SlidingConfig {
            spectrum_update: SpectrumUpdate::Incremental { resync_every: 16 },
            ..SlidingConfig::default()
        };
        assert!(SlidingDetector::new(&baseline, &[0], ok).is_ok());
    }

    #[test]
    fn rejects_empty_sensor_list_and_zero_window() {
        let baseline = Baseline {
            per_sensor_db: vec![vec![0.0; 8]],
        };
        assert!(SlidingDetector::new(&baseline, &[], SlidingConfig::default()).is_err());
        let bad = SlidingConfig {
            window_records: 0,
            ..SlidingConfig::default()
        };
        assert!(SlidingDetector::new(&baseline, &[0], bad).is_err());
        let bad_fill = SlidingConfig {
            min_window_records: 9,
            ..SlidingConfig::default()
        };
        assert!(SlidingDetector::new(&baseline, &[0], bad_fill).is_err());
        assert!(SlidingDetector::new(&baseline, &[3], SlidingConfig::default()).is_err());
        let ok = SlidingDetector::new(&baseline, &[0], SlidingConfig::default()).unwrap();
        assert_eq!(ok.lanes(), 1);
        assert_eq!(ok.sensors(), vec![0]);
        assert!(!ok.any_alarmed());
    }

    #[test]
    fn top_hit_is_max_excess_not_first_listed() {
        // Regression: two hits with the larger excess at the *higher*
        // bin — "top" must follow the excess, in either list order.
        assert_eq!(top_hit(&[(3, 12.0), (90, 25.0)]), Some((90, 25.0)));
        assert_eq!(top_hit(&[(90, 25.0), (3, 12.0)]), Some((90, 25.0)));
        assert_eq!(top_hit(&[]), None);
    }

    #[test]
    fn excess_hits_arrive_sorted_by_descending_excess() {
        // The ordering contract `hits.first()` used to lean on, pinned
        // where the detector consumes it: flat baseline, two emergent
        // bins, the stronger at the higher frequency.
        let baseline = vec![-80.0; 128];
        let mut test = baseline.clone();
        test[10] = -68.0; // 12 dB excess
        test[100] = -55.0; // 25 dB excess
        let hits = peak::excess_over_baseline_db(&test, &baseline, 10.0);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 100, "descending excess puts bin 100 first");
        assert_eq!(top_hit(&hits), Some((100, 25.0)));
    }

    #[test]
    fn window_roll_recycles_buffers_and_never_starves_fresh() {
        const LEN: usize = 64;
        let depth = 3;
        let mut fresh = TraceSet {
            records: vec![Vec::with_capacity(LEN)],
            fs_hz: 1.0,
            sensor: crate::chip::SensorSelect::Psa(0),
        };
        let mut window = TraceSet {
            records: Vec::new(),
            fs_hz: 0.0,
            sensor: crate::chip::SensorSelect::Psa(0),
        };
        let ptrs = |window: &TraceSet, fresh: &TraceSet| -> Vec<usize> {
            let mut p: Vec<usize> = window
                .records
                .iter()
                .chain(fresh.records.iter())
                .map(|r| r.as_ptr() as usize)
                .collect();
            p.sort_unstable();
            p
        };
        let mut steady_ptrs: Option<Vec<usize>> = None;
        for tick in 0..20usize {
            // Simulate the stream pull: refill `fresh` in place. The
            // recycling invariant under test is that every pull after
            // the first finds a full-capacity buffer waiting.
            if tick > 0 {
                assert!(
                    fresh.records[0].capacity() >= LEN,
                    "tick {tick}: fresh buffer lost its capacity"
                );
            }
            fresh.records[0].clear();
            fresh.records[0].extend((0..LEN).map(|i| (tick * LEN + i) as f64));
            roll_window(&mut window, &mut fresh, depth);

            assert_eq!(window.records.len(), depth.min(tick + 1));
            // The window holds the last `depth` pulls, oldest first.
            let oldest_tick = (tick + 1).saturating_sub(depth);
            for (slot, t) in (oldest_tick..=tick).enumerate() {
                assert_eq!(window.records[slot][0], (t * LEN) as f64);
            }
            // Steady state: the buffer set is closed — records recycle
            // between the window and `fresh`, nothing is allocated.
            if window.records.len() == depth {
                let now = ptrs(&window, &fresh);
                match &steady_ptrs {
                    None => steady_ptrs = Some(now),
                    Some(expect) => {
                        assert_eq!(&now, expect, "tick {tick}: buffer set changed")
                    }
                }
            }
        }
    }
}
