//! Typed, cycle-stamped events emitted by the streaming monitor.

use std::fmt;

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorEventKind {
    /// A sensor's rolling spectrum exceeded its baseline envelope: the
    /// monitor raises the Trojan flag.
    Alarm {
        /// Strongest excess over the baseline envelope, dB.
        excess_db: f64,
        /// Frequency of the strongest emergent bin, Hz.
        freq_hz: f64,
    },
    /// A previously alarming sensor has been quiet long enough: the
    /// flag drops.
    Clear,
    /// Start of an alarm episode: the sensor whose emergent amplitude
    /// is strongest — its footprint localizes the Trojan.
    Localized,
    /// The sensor's rolling baseline was refreshed from recent quiet
    /// windows (operating-condition drift absorbed, not alarmed).
    DriftRecalibrated,
}

/// One monitor event, stamped with the stream position at which it
/// fired.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorEvent {
    /// Stream record index (0-based) the event fired on.
    pub record: usize,
    /// Chip cycles observed by the stream when the event fired
    /// (`(record + 1) ×` record length; warm-up excluded).
    pub cycle: u64,
    /// Monitor-loop wall time since stream start, seconds (acquisition
    /// plus processing, per the [`MonitorTiming`] model).
    ///
    /// [`MonitorTiming`]: crate::mttd::MonitorTiming
    pub elapsed_s: f64,
    /// The sensor concerned.
    pub sensor: usize,
    /// What happened.
    pub kind: MonitorEventKind,
}

impl fmt::Display for MonitorEvent {
    /// Renders one deterministic event-log line (the `monitor` binary's
    /// stdout unit; byte-identical at any worker count).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rec {:>3}  cycle {:>8}  t {:>9.3} ms  sensor {:>2}  ",
            self.record,
            self.cycle,
            self.elapsed_s * 1e3,
            self.sensor
        )?;
        match &self.kind {
            MonitorEventKind::Alarm { excess_db, freq_hz } => {
                write!(
                    f,
                    "ALARM         +{:.1} dB @ {:.3} MHz",
                    excess_db,
                    freq_hz / 1e6
                )
            }
            MonitorEventKind::Clear => write!(f, "CLEAR"),
            MonitorEventKind::Localized => write!(f, "LOCALIZED"),
            MonitorEventKind::DriftRecalibrated => write!(f, "RECALIBRATED"),
        }
    }
}

impl MonitorEvent {
    /// `true` for [`MonitorEventKind::Alarm`].
    pub fn is_alarm(&self) -> bool {
        matches!(self.kind, MonitorEventKind::Alarm { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_log_lines_are_stable() {
        let e = MonitorEvent {
            record: 3,
            cycle: 32_768,
            elapsed_s: 5.2e-3,
            sensor: 10,
            kind: MonitorEventKind::Alarm {
                excess_db: 18.25,
                freq_hz: 48.0e6,
            },
        };
        assert_eq!(
            e.to_string(),
            "rec   3  cycle    32768  t     5.200 ms  sensor 10  ALARM         +18.2 dB @ 48.000 MHz"
        );
        assert!(e.is_alarm());
        let c = MonitorEvent {
            kind: MonitorEventKind::Clear,
            ..e.clone()
        };
        assert!(c.to_string().ends_with("CLEAR"));
        assert!(!c.is_alarm());
        let l = MonitorEvent {
            kind: MonitorEventKind::Localized,
            ..e.clone()
        };
        assert!(l.to_string().ends_with("LOCALIZED"));
        let d = MonitorEvent {
            kind: MonitorEventKind::DriftRecalibrated,
            ..e
        };
        assert!(d.to_string().ends_with("RECALIBRATED"));
    }
}
