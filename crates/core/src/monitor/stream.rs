//! The record stream: one-at-a-time acquisition from a live chip under
//! an [`ActivationSchedule`].

use crate::acquisition::{AcqContext, TraceSet};
use crate::chip::SensorSelect;
use crate::error::CoreError;
use crate::monitor::schedule::ActivationSchedule;

/// Pulls records one at a time from a live [`TestChip`] while an
/// [`ActivationSchedule`] scripts what the chip is doing.
///
/// The source itself is stateless between pulls: record `r` on sensor
/// `s` is a pure function of `(schedule, r, s)`, acquired through the
/// caller's reusable [`AcqContext`] with zero hot-path allocations once
/// the context's buffers are warm. That purity is what lets whole
/// monitor sessions fan out across the campaign engine with
/// byte-identical output.
///
/// [`TestChip`]: crate::chip::TestChip
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSource {
    schedule: ActivationSchedule,
}

impl StreamSource {
    /// A stream scripted by `schedule`.
    pub fn new(schedule: ActivationSchedule) -> Self {
        StreamSource { schedule }
    }

    /// The schedule scripting this stream.
    pub fn schedule(&self) -> &ActivationSchedule {
        &self.schedule
    }

    /// Stream length in records.
    pub fn horizon(&self) -> usize {
        self.schedule.horizon()
    }

    /// Acquires stream record `record` from PSA sensor `sensor` into
    /// `out` (one record; `out`'s buffer is recycled).
    ///
    /// # Errors
    ///
    /// Propagates acquisition errors ([`CoreError`]).
    pub fn pull_into(
        &self,
        ctx: &mut AcqContext<'_>,
        record: usize,
        sensor: usize,
        out: &mut TraceSet,
    ) -> Result<(), CoreError> {
        self.pull_scenario_into(ctx, &self.schedule.scenario_at(record), sensor, out)
    }

    /// [`pull_into`](Self::pull_into) with the record's effective
    /// scenario already computed (the session computes it once per tick
    /// and shares it across sensor lanes).
    ///
    /// # Errors
    ///
    /// Propagates acquisition errors ([`CoreError`]).
    pub fn pull_scenario_into(
        &self,
        ctx: &mut AcqContext<'_>,
        scenario: &crate::scenario::Scenario,
        sensor: usize,
        out: &mut TraceSet,
    ) -> Result<(), CoreError> {
        ctx.acquire_into(scenario, SensorSelect::Psa(sensor), 1, out)
    }
}
