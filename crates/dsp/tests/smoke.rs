//! Crate smoke test: the FFT entry point round-trips.

use psa_dsp::{fft, Complex};

#[test]
fn fft_roundtrip_smoke() {
    let x: Vec<Complex> = (0..64)
        .map(|i| Complex::new((i as f64 * 0.3).sin(), 0.0))
        .collect();
    let spec = fft::fft_any(&x).unwrap();
    let back = fft::ifft_any(&spec).unwrap();
    for (a, b) in back.iter().zip(&x) {
        assert!((*a - *b).abs() < 1e-9);
    }
}
