//! Property-based tests for the DSP substrate.
//!
//! The container has no network access, so instead of the `proptest`
//! crate these properties are checked over a deterministic seeded sweep:
//! every case derives its inputs from `SmallRng`, which keeps failures
//! reproducible (the failing seed is in the assertion message).

use psa_dsp::rng::SmallRng;
use psa_dsp::window::Window;
use psa_dsp::{correlate, fft, filter, spectrum, stats, Complex};

const CASES: u64 = 64;

/// A random vector with values in `[lo, hi)` and length in `[min_len, max_len)`.
fn vec_in(rng: &mut SmallRng, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let n = min_len + rng.gen_index(max_len - min_len);
    (0..n).map(|_| lo + (hi - lo) * rng.gen_f64()).collect()
}

fn finite_signal(rng: &mut SmallRng, max_len: usize) -> Vec<f64> {
    vec_in(rng, -1.0e3, 1.0e3, 1, max_len)
}

/// fft followed by ifft returns the original signal.
#[test]
fn fft_ifft_roundtrip() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let re = vec_in(&mut rng, -1.0e3, 1.0e3, 1, 257);
        let orig: Vec<Complex> = re.iter().map(|&r| Complex::new(r, -r * 0.5)).collect();
        let spec = fft::fft_any(&orig).unwrap();
        let back = fft::ifft_any(&spec).unwrap();
        for (a, b) in back.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-6 * (1.0 + b.abs()), "seed {case}");
        }
    }
}

/// Parseval: time-domain energy equals frequency-domain energy / N.
#[test]
fn parseval_holds() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let x = finite_signal(&mut rng, 300);
        let spec = fft::rfft(&x).unwrap();
        let te: f64 = x.iter().map(|v| v * v).sum();
        let fe: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((te - fe).abs() <= 1e-6 * (1.0 + te), "seed {case}");
    }
}

/// FFT linearity: F(a+b) == F(a) + F(b).
#[test]
fn fft_linearity() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let a = vec_in(&mut rng, -100.0, 100.0, 64, 65);
        let b = vec_in(&mut rng, -100.0, 100.0, 64, 65);
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = fft::rfft(&a).unwrap();
        let fb = fft::rfft(&b).unwrap();
        let fs = fft::rfft(&sum).unwrap();
        for k in 0..64 {
            assert!(
                (fs[k] - (fa[k] + fb[k])).abs() < 1e-6,
                "seed {case} bin {k}"
            );
        }
    }
}

/// Real-input FFT spectra are conjugate-symmetric.
#[test]
fn rfft_symmetry() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let x = finite_signal(&mut rng, 200);
        let spec = fft::rfft(&x).unwrap();
        let n = spec.len();
        for k in 1..n / 2 {
            let d = spec[n - k] - spec[k].conj();
            assert!(
                d.abs() < 1e-6 * (1.0 + spec[k].abs()),
                "seed {case} bin {k}"
            );
        }
    }
}

/// Amplitude spectrum values are non-negative and finite.
#[test]
fn amplitude_spectrum_nonnegative() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let x = finite_signal(&mut rng, 256);
        let s = spectrum::amplitude_spectrum(&x, Window::Hann);
        assert!(s.iter().all(|&v| v >= 0.0 && v.is_finite()), "seed {case}");
    }
}

/// Convolution is commutative.
#[test]
fn convolution_commutes() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let a = vec_in(&mut rng, -10.0, 10.0, 1, 40);
        let b = vec_in(&mut rng, -10.0, 10.0, 1, 40);
        let ab = filter::convolve(&a, &b);
        let ba = filter::convolve(&b, &a);
        assert_eq!(ab.len(), ba.len(), "seed {case}");
        for (x, y) in ab.iter().zip(&ba) {
            assert!((x - y).abs() < 1e-9, "seed {case}");
        }
    }
}

/// RMS is invariant to sign flips and scales linearly with gain.
#[test]
fn rms_properties() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let x = finite_signal(&mut rng, 200);
        let k = 0.01 + 99.99 * rng.gen_f64();
        let flipped: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!(
            (stats::rms(&x) - stats::rms(&flipped)).abs() < 1e-9,
            "seed {case}"
        );
        let scaled: Vec<f64> = x.iter().map(|v| v * k).collect();
        assert!(
            (stats::rms(&scaled) - k * stats::rms(&x)).abs() < 1e-6 * (1.0 + stats::rms(&x) * k),
            "seed {case}"
        );
    }
}

/// Percentiles are monotone in p and bracketed by min/max.
#[test]
fn percentile_monotone() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let x = finite_signal(&mut rng, 100);
        let (lo, hi) = stats::min_max(&x);
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = stats::percentile(&x, p);
            assert!(v >= prev - 1e-12, "seed {case} p {p}");
            assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "seed {case} p {p}");
            prev = v;
        }
    }
}

/// Pearson correlation is symmetric and bounded.
#[test]
fn pearson_bounds() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let a = vec_in(&mut rng, -100.0, 100.0, 3, 50);
        let b: Vec<f64> = a.iter().map(|v| v * 2.0 + 1.0).collect();
        let r = correlate::pearson(&a, &b).unwrap();
        assert!(r <= 1.0 + 1e-9, "seed {case}");
        // A positive affine map gives correlation 1 (or 0 if degenerate).
        assert!(r > 0.999 || r == 0.0, "seed {case} r {r}");
        let rab = correlate::pearson(&a, &b).unwrap();
        let rba = correlate::pearson(&b, &a).unwrap();
        assert!((rab - rba).abs() < 1e-12, "seed {case}");
    }
}

/// Welford running stats match batch stats.
#[test]
fn running_matches_batch() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let x = finite_signal(&mut rng, 300);
        let mut r = stats::Running::new();
        for &v in &x {
            r.push(v);
        }
        assert!(
            (r.mean() - stats::mean(&x)).abs() < 1e-6 * (1.0 + stats::mean(&x).abs()),
            "seed {case}"
        );
        assert!(
            (r.variance() - stats::variance(&x)).abs() < 1e-5 * (1.0 + stats::variance(&x)),
            "seed {case}"
        );
    }
}

/// Window coherent gain is in (0, 1] for every window.
#[test]
fn window_gains_bounded() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let n = 2 + rng.gen_index(510);
        for w in Window::ALL {
            let cg = w.coherent_gain(n);
            assert!(cg > 0.0 && cg <= 1.0 + 1e-12, "{w} cg={cg} seed {case}");
            let ng = w.noise_gain(n);
            assert!(ng > 0.0 && ng <= 1.0 + 1e-12, "{w} ng={ng} seed {case}");
        }
    }
}

/// Resampling a constant series stays constant.
#[test]
fn resample_constant() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let v = -100.0 + 200.0 * rng.gen_f64();
        let n = 1 + rng.gen_index(49);
        let m = 1 + rng.gen_index(199);
        let series = vec![v; n];
        let out = spectrum::resample_linear(&series, m).unwrap();
        assert_eq!(out.len(), m, "seed {case}");
        assert!(out.iter().all(|&o| (o - v).abs() < 1e-9), "seed {case}");
    }
}
