//! Property-based tests for the DSP substrate.

use proptest::prelude::*;
use psa_dsp::window::Window;
use psa_dsp::{correlate, fft, filter, spectrum, stats, Complex};

fn finite_signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e3..1.0e3f64, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// fft followed by ifft returns the original signal.
    #[test]
    fn fft_ifft_roundtrip(re in prop::collection::vec(-1.0e3..1.0e3f64, 1..257)) {
        let orig: Vec<Complex> = re.iter().map(|&r| Complex::new(r, -r * 0.5)).collect();
        let spec = fft::fft_any(&orig).unwrap();
        let back = fft::ifft_any(&spec).unwrap();
        for (a, b) in back.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    /// Parseval: time-domain energy equals frequency-domain energy / N.
    #[test]
    fn parseval_holds(x in finite_signal(300)) {
        let spec = fft::rfft(&x).unwrap();
        let te: f64 = x.iter().map(|v| v * v).sum();
        let fe: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        prop_assert!((te - fe).abs() <= 1e-6 * (1.0 + te));
    }

    /// FFT linearity: F(a+b) == F(a) + F(b).
    #[test]
    fn fft_linearity(
        a in prop::collection::vec(-100.0..100.0f64, 64),
        b in prop::collection::vec(-100.0..100.0f64, 64),
    ) {
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = fft::rfft(&a).unwrap();
        let fb = fft::rfft(&b).unwrap();
        let fs = fft::rfft(&sum).unwrap();
        for k in 0..64 {
            prop_assert!((fs[k] - (fa[k] + fb[k])).abs() < 1e-6);
        }
    }

    /// Real-input FFT spectra are conjugate-symmetric.
    #[test]
    fn rfft_symmetry(x in finite_signal(200)) {
        let spec = fft::rfft(&x).unwrap();
        let n = spec.len();
        for k in 1..n / 2 {
            let d = spec[n - k] - spec[k].conj();
            prop_assert!(d.abs() < 1e-6 * (1.0 + spec[k].abs()));
        }
    }

    /// Amplitude spectrum values are non-negative and finite.
    #[test]
    fn amplitude_spectrum_nonnegative(x in finite_signal(256)) {
        let s = spectrum::amplitude_spectrum(&x, Window::Hann);
        prop_assert!(s.iter().all(|&v| v >= 0.0 && v.is_finite()));
    }

    /// Convolution is commutative.
    #[test]
    fn convolution_commutes(
        a in prop::collection::vec(-10.0..10.0f64, 1..40),
        b in prop::collection::vec(-10.0..10.0f64, 1..40),
    ) {
        let ab = filter::convolve(&a, &b);
        let ba = filter::convolve(&b, &a);
        prop_assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// RMS is invariant to sign flips and scales linearly with gain.
    #[test]
    fn rms_properties(x in finite_signal(200), k in 0.01..100.0f64) {
        let flipped: Vec<f64> = x.iter().map(|v| -v).collect();
        prop_assert!((stats::rms(&x) - stats::rms(&flipped)).abs() < 1e-9);
        let scaled: Vec<f64> = x.iter().map(|v| v * k).collect();
        prop_assert!((stats::rms(&scaled) - k * stats::rms(&x)).abs() < 1e-6 * (1.0 + stats::rms(&x) * k));
    }

    /// Percentiles are monotone in p and bracketed by min/max.
    #[test]
    fn percentile_monotone(x in finite_signal(100)) {
        let (lo, hi) = stats::min_max(&x);
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = stats::percentile(&x, p);
            prop_assert!(v >= prev - 1e-12);
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
            prev = v;
        }
    }

    /// Pearson correlation is symmetric and bounded.
    #[test]
    fn pearson_bounds(
        a in prop::collection::vec(-100.0..100.0f64, 3..50),
    ) {
        let b: Vec<f64> = a.iter().map(|v| v * 2.0 + 1.0).collect();
        let r = correlate::pearson(&a, &b).unwrap();
        prop_assert!(r <= 1.0 + 1e-9);
        // A positive affine map gives correlation 1 (or 0 if degenerate).
        prop_assert!(r > 0.999 || r == 0.0);
        let rab = correlate::pearson(&a, &b).unwrap();
        let rba = correlate::pearson(&b, &a).unwrap();
        prop_assert!((rab - rba).abs() < 1e-12);
    }

    /// Welford running stats match batch stats.
    #[test]
    fn running_matches_batch(x in finite_signal(300)) {
        let mut r = stats::Running::new();
        for &v in &x {
            r.push(v);
        }
        prop_assert!((r.mean() - stats::mean(&x)).abs() < 1e-6 * (1.0 + stats::mean(&x).abs()));
        prop_assert!((r.variance() - stats::variance(&x)).abs() < 1e-5 * (1.0 + stats::variance(&x)));
    }

    /// Window coherent gain is in (0, 1] for every window.
    #[test]
    fn window_gains_bounded(n in 2usize..512) {
        for w in Window::ALL {
            let cg = w.coherent_gain(n);
            prop_assert!(cg > 0.0 && cg <= 1.0 + 1e-12, "{} cg={}", w, cg);
            let ng = w.noise_gain(n);
            prop_assert!(ng > 0.0 && ng <= 1.0 + 1e-12);
        }
    }

    /// Resampling a constant series stays constant.
    #[test]
    fn resample_constant(v in -100.0..100.0f64, n in 1usize..50, m in 1usize..200) {
        let series = vec![v; n];
        let out = spectrum::resample_linear(&series, m).unwrap();
        prop_assert_eq!(out.len(), m);
        prop_assert!(out.iter().all(|&o| (o - v).abs() < 1e-9));
    }
}
