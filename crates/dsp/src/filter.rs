//! FIR filter design and application.
//!
//! Windowed-sinc designs (low-pass and band-pass) plus linear convolution
//! and decimation. The zero-span path uses a low-pass from here as its
//! resolution-bandwidth filter, and the current-waveform synthesis uses
//! convolution for pulse shaping.

use crate::error::DspError;
use crate::window::Window;
use std::f64::consts::PI;

/// A finite-impulse-response filter (its tap coefficients).
///
/// # Example
///
/// ```
/// use psa_dsp::filter::FirFilter;
/// use psa_dsp::window::Window;
///
/// // 1 MHz low-pass at 10 MS/s, 63 taps.
/// let lp = FirFilter::low_pass(1.0e6, 10.0e6, 63, Window::Hamming)?;
/// assert_eq!(lp.taps().len(), 63);
/// // DC gain is unity.
/// assert!((lp.taps().iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// # Ok::<(), psa_dsp::DspError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FirFilter {
    taps: Vec<f64>,
}

impl FirFilter {
    /// Builds a filter directly from taps.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if `taps` is empty.
    pub fn from_taps(taps: Vec<f64>) -> Result<Self, DspError> {
        if taps.is_empty() {
            return Err(DspError::EmptyInput);
        }
        Ok(FirFilter { taps })
    }

    /// Windowed-sinc low-pass with cutoff `cutoff_hz` at sample rate
    /// `fs_hz`, `num_taps` taps (forced odd for a symmetric, linear-phase
    /// type-I filter), normalized to unity DC gain.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::FrequencyOutOfRange`] if `cutoff_hz` is not in
    /// `(0, fs/2)`, [`DspError::NonPositive`] for a bad sample rate, or
    /// [`DspError::InvalidLength`] when `num_taps == 0`.
    pub fn low_pass(
        cutoff_hz: f64,
        fs_hz: f64,
        num_taps: usize,
        window: Window,
    ) -> Result<Self, DspError> {
        if fs_hz <= 0.0 {
            return Err(DspError::NonPositive {
                what: "sample rate",
            });
        }
        if cutoff_hz <= 0.0 || cutoff_hz >= fs_hz / 2.0 {
            return Err(DspError::FrequencyOutOfRange {
                freq_hz: cutoff_hz,
                fs_hz,
            });
        }
        if num_taps == 0 {
            return Err(DspError::InvalidLength {
                what: "fir tap count",
                got: 0,
            });
        }
        let n = if num_taps % 2 == 0 {
            num_taps + 1
        } else {
            num_taps
        };
        let fc = cutoff_hz / fs_hz; // normalized (cycles/sample)
        let mid = (n / 2) as isize;
        let mut taps: Vec<f64> = (0..n)
            .map(|i| {
                let k = i as isize - mid;
                if k == 0 {
                    2.0 * fc
                } else {
                    (2.0 * PI * fc * k as f64).sin() / (PI * k as f64)
                }
            })
            .collect();
        // FIR design needs the symmetric window convention so the taps are
        // exactly mirror-symmetric (linear phase).
        let w = window.coefficients_symmetric(n);
        for (t, wi) in taps.iter_mut().zip(&w) {
            *t *= wi;
        }
        let sum: f64 = taps.iter().sum();
        for t in &mut taps {
            *t /= sum;
        }
        Ok(FirFilter { taps })
    }

    /// Windowed-sinc band-pass centred on `[f_lo, f_hi]`, normalized to
    /// unity gain at the band centre.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FirFilter::low_pass`], plus
    /// [`DspError::FrequencyOutOfRange`] when `f_lo >= f_hi`.
    pub fn band_pass(
        f_lo_hz: f64,
        f_hi_hz: f64,
        fs_hz: f64,
        num_taps: usize,
        window: Window,
    ) -> Result<Self, DspError> {
        if f_lo_hz >= f_hi_hz {
            return Err(DspError::FrequencyOutOfRange {
                freq_hz: f_lo_hz,
                fs_hz,
            });
        }
        let hi = FirFilter::low_pass(f_hi_hz, fs_hz, num_taps, window)?;
        let lo = FirFilter::low_pass(f_lo_hz, fs_hz, num_taps, window)?;
        let mut taps: Vec<f64> = hi.taps.iter().zip(&lo.taps).map(|(&h, &l)| h - l).collect();
        // Normalize gain at band centre.
        let fc = (f_lo_hz + f_hi_hz) / 2.0 / fs_hz;
        let mut re = 0.0;
        let mut im = 0.0;
        for (k, &t) in taps.iter().enumerate() {
            let ph = -2.0 * PI * fc * k as f64;
            re += t * ph.cos();
            im += t * ph.sin();
        }
        let gain = re.hypot(im);
        if gain > 0.0 {
            for t in &mut taps {
                *t /= gain;
            }
        }
        Ok(FirFilter { taps })
    }

    /// The filter taps.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Group delay in samples (for symmetric filters: `(len-1)/2`).
    pub fn group_delay(&self) -> f64 {
        (self.taps.len() as f64 - 1.0) / 2.0
    }

    /// Filters `signal`, returning a same-length output ("same" mode,
    /// delay-compensated for symmetric filters).
    pub fn filter(&self, signal: &[f64]) -> Vec<f64> {
        let full = convolve(signal, &self.taps);
        let delay = (self.taps.len() - 1) / 2;
        full.into_iter().skip(delay).take(signal.len()).collect()
    }

    /// Magnitude response at frequency `freq_hz` for sample rate `fs_hz`.
    pub fn magnitude_at(&self, freq_hz: f64, fs_hz: f64) -> f64 {
        let fc = freq_hz / fs_hz;
        let mut re = 0.0;
        let mut im = 0.0;
        for (k, &t) in self.taps.iter().enumerate() {
            let ph = -2.0 * PI * fc * k as f64;
            re += t * ph.cos();
            im += t * ph.sin();
        }
        re.hypot(im)
    }
}

/// Full linear convolution; output length `a.len() + b.len() - 1`.
///
/// Empty inputs yield an empty output.
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0.0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] += ai * bj;
        }
    }
    out
}

/// Keeps every `factor`-th sample.
///
/// # Errors
///
/// Returns [`DspError::NonPositive`] when `factor == 0`.
pub fn decimate(signal: &[f64], factor: usize) -> Result<Vec<f64>, DspError> {
    if factor == 0 {
        return Err(DspError::NonPositive {
            what: "decimation factor",
        });
    }
    Ok(signal.iter().step_by(factor).copied().collect())
}

/// Sliding median of a series: each element replaced by the median over
/// a ±`half_window` neighbourhood (truncated at the edges).
///
/// Applied to a dB spectrum this estimates the spectrum's own smooth
/// floor — the reference-free analogue of a learned baseline: narrow
/// spectral lines (clock harmonics, Trojan sidebands) stand out of the
/// residual `x - sliding_median(x)` while broadband tilt cancels.
///
/// `half_window == 0` returns the input unchanged.
pub fn sliding_median(x: &[f64], half_window: usize) -> Vec<f64> {
    if half_window == 0 {
        return x.to_vec();
    }
    let n = x.len();
    let mut scratch: Vec<f64> = Vec::with_capacity(2 * half_window + 1);
    (0..n)
        .map(|k| {
            let lo = k.saturating_sub(half_window);
            let hi = (k + half_window + 1).min(n);
            scratch.clear();
            scratch.extend_from_slice(&x[lo..hi]);
            crate::stats::median(&scratch)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn sliding_median_flattens_isolated_spike() {
        let mut x = vec![1.0; 32];
        x[16] = 100.0;
        let floor = sliding_median(&x, 4);
        assert_eq!(floor[16], 1.0, "median ignores the single outlier");
        assert_eq!(floor[0], 1.0);
    }

    #[test]
    fn sliding_median_zero_window_is_identity() {
        let x = vec![3.0, 1.0, 2.0];
        assert_eq!(sliding_median(&x, 0), x);
    }

    #[test]
    fn sliding_median_follows_trend() {
        let x: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let floor = sliding_median(&x, 3);
        // Interior medians track the ramp exactly.
        assert_eq!(floor[10], 10.0);
        assert_eq!(floor[50], 50.0);
    }

    #[test]
    fn convolve_identity() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(convolve(&x, &[1.0]), x);
    }

    #[test]
    fn convolve_known_result() {
        // [1,2] * [3,4] = [3, 10, 8]
        assert_eq!(convolve(&[1.0, 2.0], &[3.0, 4.0]), vec![3.0, 10.0, 8.0]);
    }

    #[test]
    fn convolve_commutes() {
        let a = vec![1.0, -2.0, 0.5, 3.0];
        let b = vec![0.2, 0.7, -1.1];
        assert_eq!(convolve(&a, &b), convolve(&b, &a));
    }

    #[test]
    fn convolve_empty() {
        assert!(convolve(&[], &[1.0]).is_empty());
        assert!(convolve(&[1.0], &[]).is_empty());
    }

    #[test]
    fn low_pass_passes_low_blocks_high() {
        let fs = 1.0e6;
        let lp = FirFilter::low_pass(50e3, fs, 101, Window::Hamming).unwrap();
        assert!(lp.magnitude_at(0.0, fs) > 0.999);
        assert!(lp.magnitude_at(10e3, fs) > 0.95);
        assert!(lp.magnitude_at(200e3, fs) < 0.01);
        assert!(lp.magnitude_at(450e3, fs) < 0.01);
    }

    #[test]
    fn low_pass_attenuates_high_tone_in_time_domain() {
        let fs = 1.0e6;
        let lp = FirFilter::low_pass(50e3, fs, 101, Window::Hamming).unwrap();
        let n = 4096;
        let low: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 10e3 * i as f64 / fs).sin())
            .collect();
        let high: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 300e3 * i as f64 / fs).sin())
            .collect();
        let rms = |v: &[f64]| (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt();
        // Skip the transient at both ends.
        let y_low = lp.filter(&low);
        let y_high = lp.filter(&high);
        assert!(rms(&y_low[200..n - 200]) > 0.65);
        assert!(rms(&y_high[200..n - 200]) < 0.01);
    }

    #[test]
    fn band_pass_selects_band() {
        let fs = 264.0e6;
        // The zero-span use case: select 48 MHz +- 2 MHz.
        let bp = FirFilter::band_pass(46e6, 50e6, fs, 201, Window::Hamming).unwrap();
        assert!(bp.magnitude_at(48e6, fs) > 0.95);
        assert!(bp.magnitude_at(33e6, fs) < 0.02);
        assert!(bp.magnitude_at(66e6, fs) < 0.02);
        assert!(bp.magnitude_at(0.0, fs) < 0.01);
    }

    #[test]
    fn design_validation() {
        assert!(FirFilter::low_pass(0.0, 1e6, 11, Window::Hann).is_err());
        assert!(FirFilter::low_pass(6e5, 1e6, 11, Window::Hann).is_err());
        assert!(FirFilter::low_pass(1e3, 0.0, 11, Window::Hann).is_err());
        assert!(FirFilter::low_pass(1e3, 1e6, 0, Window::Hann).is_err());
        assert!(FirFilter::band_pass(5e4, 4e4, 1e6, 11, Window::Hann).is_err());
        assert!(FirFilter::from_taps(vec![]).is_err());
    }

    #[test]
    fn even_tap_request_is_made_odd() {
        let lp = FirFilter::low_pass(1e3, 1e6, 10, Window::Hann).unwrap();
        assert_eq!(lp.taps().len() % 2, 1);
    }

    #[test]
    fn filter_output_length_matches_input() {
        let lp = FirFilter::low_pass(1e3, 1e6, 21, Window::Hann).unwrap();
        let x = vec![1.0; 100];
        assert_eq!(lp.filter(&x).len(), 100);
    }

    #[test]
    fn filter_dc_gain_unity() {
        let lp = FirFilter::low_pass(1e3, 1e6, 31, Window::Blackman).unwrap();
        let x = vec![2.5; 400];
        let y = lp.filter(&x);
        // Steady-state (after the transient) equals the input level.
        assert!((y[200] - 2.5).abs() < 1e-9);
    }

    #[test]
    fn decimate_keeps_every_kth() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(decimate(&x, 3).unwrap(), vec![0.0, 3.0, 6.0, 9.0]);
        assert!(decimate(&x, 0).is_err());
        assert_eq!(decimate(&x, 1).unwrap(), x);
    }

    #[test]
    fn taps_are_symmetric() {
        let lp = FirFilter::low_pass(20e3, 1e6, 41, Window::Blackman).unwrap();
        let t = lp.taps();
        for i in 0..t.len() / 2 {
            assert!((t[i] - t[t.len() - 1 - i]).abs() < 1e-12);
        }
        assert!((lp.group_delay() - 20.0).abs() < 1e-12);
    }
}
