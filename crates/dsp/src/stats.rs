//! Batch and running statistics.
//!
//! The SNR procedure (paper Eq. 1) is an RMS ratio; the envelope
//! classification extracts moments (variance, skewness, kurtosis) and
//! robust statistics (median, MAD, percentiles) as features. Everything
//! here is allocation-light and deterministic.

use crate::error::DspError;

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Population variance (divides by `n`). Returns 0 for slices with < 2
/// elements.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Root-mean-square value; the quantity in the paper's SNR equation.
///
/// # Example
///
/// ```
/// use psa_dsp::stats::rms;
/// // RMS of a unit sine is 1/sqrt(2).
/// let x: Vec<f64> = (0..10000)
///     .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 100.0).sin())
///     .collect();
/// assert!((rms(&x) - 1.0 / 2f64.sqrt()).abs() < 1e-3);
/// ```
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

/// SNR in dB per the paper's Equation (1):
/// `SNR = 20·log10(Vrms_signal / Vrms_noise)`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either slice is empty, or
/// [`DspError::NonPositive`] if the noise RMS is zero.
pub fn snr_db(signal: &[f64], noise: &[f64]) -> Result<f64, DspError> {
    if signal.is_empty() || noise.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let vn = rms(noise);
    if vn <= 0.0 {
        return Err(DspError::NonPositive { what: "noise rms" });
    }
    Ok(20.0 * (rms(signal) / vn).log10())
}

/// Median (by sorting a copy). Returns 0 for an empty slice.
pub fn median(x: &[f64]) -> f64 {
    percentile(x, 50.0)
}

/// Percentile in `[0, 100]` with linear interpolation between order
/// statistics. Returns 0 for an empty slice; clamps `p` into range.
pub fn percentile(x: &[f64], p: f64) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut sorted = x.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let p = p.clamp(0.0, 100.0);
    let pos = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median absolute deviation (robust spread). Returns 0 for an empty
/// slice.
pub fn mad(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let med = median(x);
    let devs: Vec<f64> = x.iter().map(|v| (v - med).abs()).collect();
    median(&devs)
}

/// Sample skewness (third standardized moment). Returns 0 when the
/// variance vanishes or fewer than 3 samples are given.
pub fn skewness(x: &[f64]) -> f64 {
    if x.len() < 3 {
        return 0.0;
    }
    let m = mean(x);
    let s = std_dev(x);
    if s == 0.0 {
        return 0.0;
    }
    x.iter().map(|v| ((v - m) / s).powi(3)).sum::<f64>() / x.len() as f64
}

/// Excess kurtosis (fourth standardized moment minus 3). Returns 0 when
/// the variance vanishes or fewer than 4 samples are given.
pub fn kurtosis_excess(x: &[f64]) -> f64 {
    if x.len() < 4 {
        return 0.0;
    }
    let m = mean(x);
    let s = std_dev(x);
    if s == 0.0 {
        return 0.0;
    }
    x.iter().map(|v| ((v - m) / s).powi(4)).sum::<f64>() / x.len() as f64 - 3.0
}

/// Peak-to-average ratio: `max(|x|) / rms(x)`. Returns 0 for empty input
/// or zero RMS.
pub fn crest_factor(x: &[f64]) -> f64 {
    let r = rms(x);
    if r == 0.0 {
        return 0.0;
    }
    x.iter().map(|v| v.abs()).fold(0.0, f64::max) / r
}

/// Min and max of a slice as `(min, max)`. Returns `(0, 0)` for empty
/// input.
pub fn min_max(x: &[f64]) -> (f64, f64) {
    if x.is_empty() {
        return (0.0, 0.0);
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in x {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// One-pass running statistics (Welford's algorithm): numerically stable
/// mean/variance over streams, used by the run-time monitor's baseline
/// learner.
///
/// # Example
///
/// ```
/// use psa_dsp::stats::Running;
///
/// let mut r = Running::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     r.push(v);
/// }
/// assert_eq!(r.count(), 4);
/// assert!((r.mean() - 2.5).abs() < 1e-12);
/// assert!((r.variance() - 1.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 before any observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Running population variance (0 with < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Running population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean = (self.mean * self.n as f64 + other.mean * other.n as f64) / total as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / total as f64;
        self.n = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < 1e-12);
        assert!((variance(&x) - 4.0).abs() < 1e-12);
        assert!((std_dev(&x) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(mad(&[]), 0.0);
        assert_eq!(skewness(&[1.0, 2.0]), 0.0);
        assert_eq!(kurtosis_excess(&[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(crest_factor(&[]), 0.0);
        assert_eq!(min_max(&[]), (0.0, 0.0));
    }

    #[test]
    fn rms_of_constant() {
        assert!((rms(&[3.0; 100]) - 3.0).abs() < 1e-12);
        assert!((rms(&[-3.0; 100]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn snr_db_known_ratio() {
        let signal = vec![10.0; 64];
        let noise = vec![1.0; 64];
        assert!((snr_db(&signal, &noise).unwrap() - 20.0).abs() < 1e-12);
        // 100x amplitude ratio = 40 dB.
        let signal = vec![100.0; 64];
        assert!((snr_db(&signal, &noise).unwrap() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn snr_db_validates() {
        assert!(snr_db(&[], &[1.0]).is_err());
        assert!(snr_db(&[1.0], &[]).is_err());
        assert!(snr_db(&[1.0], &[0.0]).is_err());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let x = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&x, 0.0), 10.0);
        assert_eq!(percentile(&x, 100.0), 40.0);
        assert!((percentile(&x, 50.0) - 25.0).abs() < 1e-12);
        // Out-of-range p is clamped.
        assert_eq!(percentile(&x, -5.0), 10.0);
        assert_eq!(percentile(&x, 150.0), 40.0);
    }

    #[test]
    fn mad_is_robust_to_outlier() {
        let clean = [1.0, 2.0, 3.0, 4.0, 5.0];
        let spiked = [1.0, 2.0, 3.0, 4.0, 1000.0];
        assert!((mad(&clean) - mad(&spiked)).abs() < 1.01);
        assert!(std_dev(&spiked) > 100.0 * std_dev(&clean));
    }

    #[test]
    fn skewness_sign() {
        // Right-skewed data has positive skewness.
        let right = [1.0, 1.0, 1.0, 1.0, 10.0];
        assert!(skewness(&right) > 0.5);
        let left = [10.0, 10.0, 10.0, 10.0, 1.0];
        assert!(skewness(&left) < -0.5);
        let sym = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&sym).abs() < 1e-12);
    }

    #[test]
    fn kurtosis_of_two_level_signal_is_minus_two() {
        // A ±1 square wave has kurtosis 1, excess -2.
        let sq: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!((kurtosis_excess(&sq) + 2.0).abs() < 1e-9);
    }

    #[test]
    fn crest_factor_of_square_and_sine() {
        let sq: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!((crest_factor(&sq) - 1.0).abs() < 1e-9);
        let sine: Vec<f64> = (0..100000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 1000.0).sin())
            .collect();
        assert!((crest_factor(&sine) - 2f64.sqrt()).abs() < 1e-3);
    }

    #[test]
    fn running_matches_batch() {
        let x: Vec<f64> = (0..500).map(|i| ((i * i) % 97) as f64 * 0.37).collect();
        let mut r = Running::new();
        for &v in &x {
            r.push(v);
        }
        assert_eq!(r.count(), 500);
        assert!((r.mean() - mean(&x)).abs() < 1e-9);
        assert!((r.variance() - variance(&x)).abs() < 1e-9);
    }

    #[test]
    fn running_merge_matches_sequential() {
        let a: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..250).map(|i| (i as f64).sqrt()).collect();
        let mut ra = Running::new();
        for &v in &a {
            ra.push(v);
        }
        let mut rb = Running::new();
        for &v in &b {
            rb.push(v);
        }
        let mut merged = ra;
        merged.merge(&rb);
        let mut seq = Running::new();
        for &v in a.iter().chain(&b) {
            seq.push(v);
        }
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean() - seq.mean()).abs() < 1e-9);
        assert!((merged.variance() - seq.variance()).abs() < 1e-9);
    }

    #[test]
    fn running_merge_with_empty() {
        let mut r = Running::new();
        r.push(1.0);
        r.push(2.0);
        let before = r;
        r.merge(&Running::new());
        assert_eq!(r, before);
        let mut empty = Running::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn min_max_finds_extremes() {
        assert_eq!(min_max(&[3.0, -1.0, 7.0, 0.0]), (-1.0, 7.0));
    }
}
