//! Spectral peak detection.
//!
//! The cross-domain analysis must find *emergent* frequency components —
//! the 48 MHz / 84 MHz Trojan sidebands of Fig 4 — in a spectrum that also
//! contains large legitimate clock harmonics. This module provides
//! prominence-based local-maximum detection plus an excess-over-baseline
//! detector with a noise-adaptive threshold (a 1-D cell-averaging CFAR).

use crate::stats;

/// A detected spectral peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Index of the peak bin.
    pub index: usize,
    /// Value at the peak.
    pub value: f64,
    /// Topographic prominence: height above the higher of the two
    /// surrounding valleys.
    pub prominence: f64,
}

/// Finds local maxima with at least `min_prominence`, sorted by descending
/// value.
///
/// A plateau reports its left-most bin. End bins are never peaks.
///
/// # Example
///
/// ```
/// use psa_dsp::peak::find_peaks;
/// let x = [0.0, 1.0, 0.2, 3.0, 0.0];
/// let peaks = find_peaks(&x, 0.5);
/// assert_eq!(peaks.len(), 2);
/// assert_eq!(peaks[0].index, 3); // biggest first
/// ```
pub fn find_peaks(x: &[f64], min_prominence: f64) -> Vec<Peak> {
    let n = x.len();
    if n < 3 {
        return Vec::new();
    }
    let mut peaks = Vec::new();
    let mut i = 1;
    while i < n - 1 {
        if x[i] > x[i - 1] && x[i] >= x[i + 1] {
            // Walk the plateau (if any) to confirm it eventually descends.
            let mut j = i;
            while j + 1 < n && x[j + 1] == x[i] {
                j += 1;
            }
            if j + 1 < n && x[j + 1] < x[i] {
                let prominence = prominence_at(x, i);
                if prominence >= min_prominence {
                    peaks.push(Peak {
                        index: i,
                        value: x[i],
                        prominence,
                    });
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    peaks.sort_by(|a, b| b.value.total_cmp(&a.value));
    peaks
}

/// Topographic prominence of the point at `idx`: its height minus the
/// higher of the two key saddles toward taller terrain (or the global
/// floor at the slice ends).
fn prominence_at(x: &[f64], idx: usize) -> f64 {
    let h = x[idx];
    // Walk left until we meet something taller; track the lowest valley.
    let mut left_min = h;
    let mut k = idx;
    loop {
        if k == 0 {
            break;
        }
        k -= 1;
        left_min = left_min.min(x[k]);
        if x[k] > h {
            break;
        }
    }
    let mut right_min = h;
    let mut k = idx;
    loop {
        if k + 1 >= x.len() {
            break;
        }
        k += 1;
        right_min = right_min.min(x[k]);
        if x[k] > h {
            break;
        }
    }
    h - left_min.max(right_min)
}

/// Bins where `test` exceeds `baseline` by at least `threshold_db`
/// (both inputs in dB). Returns `(bin, excess_db)` pairs sorted by
/// descending excess.
///
/// This is the golden-model-free comparison at the heart of the paper's
/// run-time detection: the baseline is learned from the same chip while
/// the Trojan is dormant, not from a separate golden device.
pub fn excess_over_baseline_db(
    test_db: &[f64],
    baseline_db: &[f64],
    threshold_db: f64,
) -> Vec<(usize, f64)> {
    let n = test_db.len().min(baseline_db.len());
    let mut out: Vec<(usize, f64)> = (0..n)
        .filter_map(|k| {
            let excess = test_db[k] - baseline_db[k];
            (excess >= threshold_db).then_some((k, excess))
        })
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1));
    out
}

/// One-dimensional cell-averaging CFAR detector.
///
/// For each bin, estimates the local noise level from `train` cells on
/// each side (skipping `guard` cells around the bin) and flags the bin
/// when it exceeds `scale` times that estimate. Returns flagged bin
/// indices in ascending order.
///
/// Used to pick "prominent frequency components" robustly even when the
/// spectrum floor tilts with frequency.
pub fn cfar_detect(x: &[f64], guard: usize, train: usize, scale: f64) -> Vec<usize> {
    let n = x.len();
    if n == 0 || train == 0 {
        return Vec::new();
    }
    let mut hits = Vec::new();
    for i in 0..n {
        let mut acc = 0.0;
        let mut count = 0usize;
        // Left training cells.
        let lo_end = i.saturating_sub(guard);
        let lo_start = lo_end.saturating_sub(train);
        for &v in &x[lo_start..lo_end] {
            acc += v;
            count += 1;
        }
        // Right training cells.
        let hi_start = (i + guard + 1).min(n);
        let hi_end = (hi_start + train).min(n);
        for &v in &x[hi_start..hi_end] {
            acc += v;
            count += 1;
        }
        if count == 0 {
            continue;
        }
        let noise = acc / count as f64;
        if x[i] > scale * noise {
            hits.push(i);
        }
    }
    hits
}

/// Upper envelope of a series: each element replaced by the maximum over
/// a ±`half_window` neighbourhood. Applied to learned baseline spectra
/// so a test bin must beat the local *worst case* of the quiet chip,
/// not one particular noise draw.
pub fn local_max_envelope(series: &[f64], half_window: usize) -> Vec<f64> {
    let n = series.len();
    (0..n)
        .map(|k| {
            let lo = k.saturating_sub(half_window);
            let hi = (k + half_window + 1).min(n);
            series[lo..hi].iter().cloned().fold(f64::MIN, f64::max)
        })
        .collect()
}

/// Robust z-score of each bin against the whole spectrum
/// (`(x - median) / (1.4826 · MAD)`), useful as a scale-free anomaly
/// measure. Returns an empty vector when MAD is zero.
pub fn robust_zscores(x: &[f64]) -> Vec<f64> {
    let med = stats::median(x);
    let mad = stats::mad(x);
    if mad == 0.0 {
        return Vec::new();
    }
    let denom = 1.4826 * mad;
    x.iter().map(|&v| (v - med) / denom).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_single_peak() {
        let x = [0.0, 0.1, 5.0, 0.1, 0.0];
        let p = find_peaks(&x, 1.0);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 2);
        assert_eq!(p[0].value, 5.0);
        // Global maximum: prominence reaches down to the global floor.
        assert!((p[0].prominence - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sorts_by_descending_value() {
        let x = [0.0, 2.0, 0.0, 5.0, 0.0, 3.0, 0.0];
        let p = find_peaks(&x, 0.5);
        let values: Vec<f64> = p.iter().map(|q| q.value).collect();
        assert_eq!(values, vec![5.0, 3.0, 2.0]);
    }

    #[test]
    fn prominence_filters_ripples() {
        // Small ripple on the shoulder of a big peak is rejected at high
        // prominence threshold.
        let x = [0.0, 1.0, 10.0, 9.0, 9.2, 1.0, 0.0];
        let strict = find_peaks(&x, 2.0);
        assert_eq!(strict.len(), 1);
        assert_eq!(strict[0].index, 2);
        let loose = find_peaks(&x, 0.1);
        assert_eq!(loose.len(), 2);
    }

    #[test]
    fn plateau_counts_once() {
        let x = [0.0, 3.0, 3.0, 3.0, 0.0];
        let p = find_peaks(&x, 0.5);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 1);
    }

    #[test]
    fn endpoints_are_not_peaks() {
        let x = [5.0, 1.0, 0.0, 1.0, 5.0];
        assert!(find_peaks(&x, 0.1).is_empty());
    }

    #[test]
    fn short_inputs_yield_nothing() {
        assert!(find_peaks(&[], 0.0).is_empty());
        assert!(find_peaks(&[1.0], 0.0).is_empty());
        assert!(find_peaks(&[1.0, 2.0], 0.0).is_empty());
    }

    #[test]
    fn excess_over_baseline_finds_emergent_bins() {
        let baseline = vec![-80.0; 10];
        let mut test = baseline.clone();
        test[3] = -50.0; // 30 dB excess
        test[7] = -72.0; // 8 dB excess
        let hits = excess_over_baseline_db(&test, &baseline, 10.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 3);
        assert!((hits[0].1 - 30.0).abs() < 1e-12);
        let hits = excess_over_baseline_db(&test, &baseline, 5.0);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 3); // sorted by excess
        assert_eq!(hits[1].0, 7);
    }

    #[test]
    fn excess_handles_length_mismatch() {
        let hits = excess_over_baseline_db(&[0.0, 10.0, 20.0], &[0.0, 0.0], 5.0);
        assert_eq!(hits, vec![(1, 10.0)]);
    }

    #[test]
    fn cfar_flags_tone_above_noise() {
        let mut x = vec![1.0; 100];
        x[50] = 20.0;
        let hits = cfar_detect(&x, 2, 8, 4.0);
        assert_eq!(hits, vec![50]);
    }

    #[test]
    fn cfar_adapts_to_sloped_floor() {
        // Rising floor; fixed threshold would false-alarm at the top end,
        // CFAR should not.
        let n = 200;
        let mut x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.05).collect();
        x[60] += 30.0;
        let hits = cfar_detect(&x, 2, 10, 3.0);
        assert_eq!(hits, vec![60]);
    }

    #[test]
    fn cfar_degenerate_inputs() {
        assert!(cfar_detect(&[], 1, 4, 3.0).is_empty());
        assert!(cfar_detect(&[1.0, 2.0], 1, 0, 3.0).is_empty());
    }

    #[test]
    fn robust_zscores_flag_outlier() {
        let mut x = vec![0.0; 99];
        for (i, v) in x.iter_mut().enumerate() {
            *v = (i % 7) as f64 * 0.1;
        }
        x.push(50.0);
        let z = robust_zscores(&x);
        assert_eq!(z.len(), 100);
        let max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > 10.0);
        assert_eq!(
            z.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0,
            99
        );
    }

    #[test]
    fn robust_zscores_zero_mad() {
        assert!(robust_zscores(&[1.0; 10]).is_empty());
    }

    #[test]
    fn local_max_envelope_bounds_input() {
        let x = vec![0.0, 5.0, 1.0, -3.0, 2.0];
        let env = local_max_envelope(&x, 1);
        assert_eq!(env, vec![5.0, 5.0, 5.0, 2.0, 2.0]);
        for (e, v) in env.iter().zip(&x) {
            assert!(e >= v);
        }
        assert_eq!(local_max_envelope(&x, 0), x);
        assert!(local_max_envelope(&[], 3).is_empty());
    }
}
