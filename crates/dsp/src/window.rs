//! Analysis windows for spectral estimation.
//!
//! The spectrum-analyzer model applies a window before each FFT to control
//! spectral leakage, exactly like the bench instrument the paper used. Each
//! window's coherent and noise gains are tracked so amplitude and power
//! spectra can be correctly normalized.

use std::f64::consts::PI;
use std::fmt;

/// Window function selector.
///
/// # Example
///
/// ```
/// use psa_dsp::window::Window;
///
/// let w = Window::Hann.coefficients(8);
/// assert_eq!(w.len(), 8);
/// assert!(w[0] < 1e-12); // Hann tapers to zero at the edges
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Window {
    /// No tapering (all ones). Best amplitude accuracy for bin-centred
    /// tones, worst leakage.
    Rectangular,
    /// Hann (raised cosine). Good general-purpose default.
    #[default]
    Hann,
    /// Hamming; non-zero edges, slightly better close-in sidelobes.
    Hamming,
    /// Blackman; lower sidelobes, wider main lobe.
    Blackman,
    /// 4-term Blackman-Harris; very low sidelobes.
    BlackmanHarris,
    /// Flat-top; amplitude-accurate for off-bin tones, very wide main lobe.
    /// This is what bench spectrum analyzers use for amplitude readout.
    FlatTop,
}

impl Window {
    /// All window variants, for sweeps and tests.
    pub const ALL: [Window; 6] = [
        Window::Rectangular,
        Window::Hann,
        Window::Hamming,
        Window::Blackman,
        Window::BlackmanHarris,
        Window::FlatTop,
    ];

    /// Generates the window coefficients for length `n`.
    ///
    /// Uses the periodic (DFT-even) convention, which is correct for
    /// spectral analysis. Lengths 0 and 1 return `vec![]` and `vec![1.0]`
    /// respectively.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let nf = n as f64;
        (0..n)
            .map(|i| {
                let x = 2.0 * PI * i as f64 / nf;
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hann => 0.5 - 0.5 * x.cos(),
                    Window::Hamming => 0.54 - 0.46 * x.cos(),
                    Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
                    Window::BlackmanHarris => {
                        0.35875 - 0.48829 * x.cos() + 0.14128 * (2.0 * x).cos()
                            - 0.01168 * (3.0 * x).cos()
                    }
                    Window::FlatTop => {
                        0.21557895 - 0.41663158 * x.cos() + 0.277263158 * (2.0 * x).cos()
                            - 0.083578947 * (3.0 * x).cos()
                            + 0.006947368 * (4.0 * x).cos()
                    }
                }
            })
            .collect()
    }

    /// Generates *symmetric* window coefficients for length `n`.
    ///
    /// The symmetric convention (denominator `n-1`) is the right one for
    /// FIR filter design, where the taps must be exactly mirror-symmetric
    /// for linear phase; the periodic convention of
    /// [`coefficients`](Self::coefficients) is the right one for spectral
    /// analysis.
    pub fn coefficients_symmetric(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let denom = (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = 2.0 * PI * i as f64 / denom;
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hann => 0.5 - 0.5 * x.cos(),
                    Window::Hamming => 0.54 - 0.46 * x.cos(),
                    Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
                    Window::BlackmanHarris => {
                        0.35875 - 0.48829 * x.cos() + 0.14128 * (2.0 * x).cos()
                            - 0.01168 * (3.0 * x).cos()
                    }
                    Window::FlatTop => {
                        0.21557895 - 0.41663158 * x.cos() + 0.277263158 * (2.0 * x).cos()
                            - 0.083578947 * (3.0 * x).cos()
                            + 0.006947368 * (4.0 * x).cos()
                    }
                }
            })
            .collect()
    }

    /// Coherent gain: mean of the coefficients. Divide a windowed FFT
    /// magnitude by `n * coherent_gain` to recover tone amplitude.
    pub fn coherent_gain(self, n: usize) -> f64 {
        let w = self.coefficients(n);
        if w.is_empty() {
            return 0.0;
        }
        w.iter().sum::<f64>() / n as f64
    }

    /// Noise gain: mean of squared coefficients. Used to normalize power
    /// spectral densities.
    pub fn noise_gain(self, n: usize) -> f64 {
        let w = self.coefficients(n);
        if w.is_empty() {
            return 0.0;
        }
        w.iter().map(|v| v * v).sum::<f64>() / n as f64
    }

    /// Equivalent noise bandwidth in bins: `noise_gain / coherent_gain²`.
    pub fn enbw_bins(self, n: usize) -> f64 {
        let cg = self.coherent_gain(n);
        self.noise_gain(n) / (cg * cg)
    }

    /// Applies the window to `signal` in place.
    ///
    /// # Example
    ///
    /// ```
    /// use psa_dsp::window::Window;
    /// let mut x = vec![1.0; 4];
    /// Window::Hamming.apply(&mut x);
    /// assert!((x[0] - 0.08).abs() < 1e-12);
    /// ```
    pub fn apply(self, signal: &mut [f64]) {
        let w = self.coefficients(signal.len());
        for (s, wi) in signal.iter_mut().zip(w) {
            *s *= wi;
        }
    }

    /// Returns a windowed copy of `signal`.
    pub fn applied(self, signal: &[f64]) -> Vec<f64> {
        let mut out = signal.to_vec();
        self.apply(&mut out);
        out
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Window::Rectangular => "rectangular",
            Window::Hann => "hann",
            Window::Hamming => "hamming",
            Window::Blackman => "blackman",
            Window::BlackmanHarris => "blackman-harris",
            Window::FlatTop => "flat-top",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        let w = Window::Rectangular.coefficients(16);
        assert!(w.iter().all(|&v| v == 1.0));
        assert!((Window::Rectangular.coherent_gain(16) - 1.0).abs() < 1e-15);
        assert!((Window::Rectangular.enbw_bins(16) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn hann_tapers_to_zero_and_peaks_at_one() {
        let n = 64;
        let w = Window::Hann.coefficients(n);
        assert!(w[0].abs() < 1e-12);
        let max = w.iter().cloned().fold(0.0, f64::max);
        assert!((max - 1.0).abs() < 1e-3);
    }

    #[test]
    fn hann_coherent_gain_is_half() {
        // Periodic Hann sums to exactly n/2.
        assert!((Window::Hann.coherent_gain(256) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hann_enbw_is_1_5_bins() {
        assert!((Window::Hann.enbw_bins(1024) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn all_windows_are_nonnegative_or_near_zero() {
        // Flat-top dips slightly negative by design; everything else is >= 0.
        for win in Window::ALL {
            let w = win.coefficients(128);
            let min = w.iter().cloned().fold(f64::INFINITY, f64::min);
            if win == Window::FlatTop {
                assert!(min > -0.1);
            } else {
                assert!(min >= -1e-12, "{win} has negative coefficient {min}");
            }
        }
    }

    #[test]
    fn all_windows_unit_peak_normalizable() {
        for win in Window::ALL {
            let w = win.coefficients(257);
            let max = w.iter().cloned().fold(0.0, f64::max);
            assert!(max <= 1.0 + 1e-6, "{win} peak {max}");
            assert!(max > 0.2, "{win} peak {max}");
        }
    }

    #[test]
    fn degenerate_lengths() {
        for win in Window::ALL {
            assert!(win.coefficients(0).is_empty());
            assert_eq!(win.coefficients(1), vec![1.0]);
        }
    }

    #[test]
    fn apply_matches_applied() {
        let x: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let mut inplace = x.clone();
        Window::Blackman.apply(&mut inplace);
        assert_eq!(inplace, Window::Blackman.applied(&x));
    }

    #[test]
    fn enbw_ordering_rect_hann_flattop() {
        // ENBW: rectangular < hann < flat-top (wider main lobes).
        let n = 512;
        let r = Window::Rectangular.enbw_bins(n);
        let h = Window::Hann.enbw_bins(n);
        let f = Window::FlatTop.enbw_bins(n);
        assert!(r < h && h < f, "{r} {h} {f}");
    }

    #[test]
    fn display_names() {
        assert_eq!(Window::Hann.to_string(), "hann");
        assert_eq!(Window::FlatTop.to_string(), "flat-top");
    }
}
