//! Batched spectral analysis: plan-once, run-many FFT and spectrum
//! kernels for the acquisition → detection hot path.
//!
//! The campaign engine (`psa-runtime`) re-runs the same 65 536-point
//! windowed FFT thousands of times per sweep. The free functions in
//! [`crate::spectrum`] recompute window coefficients and twiddle factors
//! and reallocate every buffer on every call; this module hoists all of
//! that into reusable state:
//!
//! * [`FftPlan`] — an iterative radix-2 FFT with the per-stage twiddle
//!   tables precomputed once. Its butterflies execute the *same*
//!   floating-point operations in the *same* order as [`crate::fft::fft`],
//!   so planned and ad-hoc transforms are **bit-identical** — the
//!   property the parallel/serial equivalence guarantee rests on.
//! * [`SpectrumScratch`] — a per-worker context caching the window
//!   coefficients, coherent gain, real-input FFT plan
//!   ([`crate::rfft::RfftPlan`]), and every intermediate buffer for
//!   amplitude-spectrum and trace-averaging pipelines.
//! * [`weighted_row_sum_into`] — the coupling-row × record-batch
//!   matrix kernel behind EMF superposition: `out[j] = Σ_i w[i]·rows[i][j]`
//!   with the accumulation order fixed (row-major, rows in slice order)
//!   so callers inherit bit-reproducibility.
//!
//! Outputs are bit-identical to the corresponding one-shot functions
//! ([`crate::spectrum::try_amplitude_spectrum`],
//! [`crate::spectrum::average_traces`]); tests assert exact equality.
//! Both paths share the same packed real-input transform, so switching
//! the pipeline to [`crate::rfft`] preserved every path-vs-path bitwise
//! guarantee even though the packed transform itself differs from the
//! complex-FFT result at the ≤1e-12·max|X| level.

use crate::complex::Complex;
use crate::error::DspError;
use crate::fft;
use crate::rfft::RfftPlan;
use crate::spectrum;
use crate::window::Window;
use std::f64::consts::PI;

/// A precomputed radix-2 FFT of one fixed power-of-two length.
///
/// # Example
///
/// ```
/// use psa_dsp::{batch::FftPlan, fft, Complex};
/// let plan = FftPlan::new(8)?;
/// let mut planned = vec![Complex::ONE; 8];
/// let mut adhoc = planned.clone();
/// plan.forward(&mut planned)?;
/// fft::fft(&mut adhoc)?;
/// assert_eq!(planned, adhoc); // bit-identical
/// # Ok::<(), psa_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Twiddle tables per butterfly stage (sizes 2, 4, …, n), stored
    /// exactly as `fft::fft` computes them so results match bit-for-bit.
    stage_twiddles: Vec<Vec<Complex>>,
}

impl FftPlan {
    /// Plans a forward FFT of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] unless `n` is a nonzero power
    /// of two.
    pub fn new(n: usize) -> Result<Self, DspError> {
        if !fft::is_power_of_two(n) {
            return Err(DspError::InvalidLength {
                what: "fft plan size (must be a power of two)",
                got: n,
            });
        }
        let mut stage_twiddles = Vec::new();
        let mut size = 2;
        while size <= n {
            let half = size / 2;
            let step = -2.0 * PI / size as f64;
            stage_twiddles.push((0..half).map(|k| Complex::cis(step * k as f64)).collect());
            size *= 2;
        }
        Ok(FftPlan { n, stage_twiddles })
    }

    /// The planned transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: [`FftPlan::new`] rejects length 0, so every
    /// constructible plan has at least one point (provided for API
    /// completeness alongside [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT using the precomputed twiddles.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] when `data.len()` differs from
    /// the planned length.
    pub fn forward(&self, data: &mut [Complex]) -> Result<(), DspError> {
        let n = self.n;
        if data.len() != n {
            return Err(DspError::InvalidLength {
                what: "fft plan input (length must match the plan)",
                got: data.len(),
            });
        }
        if n == 1 {
            return Ok(());
        }

        // Bit-reversal permutation (identical to `fft::fft`).
        let levels = n.trailing_zeros();
        for i in 0..n {
            let j = (i.reverse_bits() >> (usize::BITS - levels)) & (n - 1);
            if j > i {
                data.swap(i, j);
            }
        }

        // Iterative butterflies with the cached twiddles.
        let mut size = 2;
        let mut stage = 0;
        while size <= n {
            let half = size / 2;
            let twiddles = &self.stage_twiddles[stage];
            for start in (0..n).step_by(size) {
                for k in 0..half {
                    let even = data[start + k];
                    let odd = data[start + k + half] * twiddles[k];
                    data[start + k] = even + odd;
                    data[start + k + half] = even - odd;
                }
            }
            size *= 2;
            stage += 1;
        }
        Ok(())
    }
}

/// Coupling-row × record-batch matrix kernel:
/// `acc[j] += Σ_i (w_i · scale) · rows[i][j]`, rows accumulated in slice
/// order, row-major.
///
/// This is the superposition step of EMF synthesis (each source's
/// current waveform weighted by its coupling), hoisted here so the
/// acquisition hot path and any future blocked/fused variants share one
/// kernel. The accumulation order is fixed — row `i` is fully added
/// before row `i+1` — so callers inherit bit-reproducible results; the
/// field-layer superposition that calls this is bit-identical to its
/// historical inline loop.
///
/// `acc` is **added into**, not cleared: zero it first for a plain
/// weighted sum, or chain calls to superpose several batches.
///
/// # Example
///
/// ```
/// use psa_dsp::batch::weighted_row_sum_into;
/// let r0 = [1.0, 2.0];
/// let r1 = [10.0, 20.0];
/// let mut acc = [0.0; 2];
/// weighted_row_sum_into(&[(&r0, 2.0), (&r1, 0.5)], 1.0, &mut acc)?;
/// assert_eq!(acc, [7.0, 14.0]);
/// # Ok::<(), psa_dsp::DspError>(())
/// ```
///
/// # Errors
///
/// Returns [`DspError::InvalidLength`] when any row's length differs
/// from `acc.len()`.
pub fn weighted_row_sum_into(
    rows: &[(&[f64], f64)],
    scale: f64,
    acc: &mut [f64],
) -> Result<(), DspError> {
    for (row, _) in rows {
        if row.len() != acc.len() {
            return Err(DspError::InvalidLength {
                what: "weighted row (length must match the accumulator)",
                got: row.len(),
            });
        }
    }
    for (row, weight) in rows {
        let w = weight * scale;
        for (a, &x) in acc.iter_mut().zip(row.iter()) {
            *a += w * x;
        }
    }
    Ok(())
}

/// Reusable spectral-analysis scratch for one worker.
///
/// Owns every buffer the amplitude-spectrum pipeline needs (window
/// coefficients, FFT plan, complex work buffer, averaging accumulator),
/// sized lazily on first use and resized only when the record length or
/// window changes. All outputs are bit-identical to the one-shot
/// functions in [`crate::spectrum`].
///
/// # Example
///
/// ```
/// use psa_dsp::{batch::SpectrumScratch, spectrum, window::Window};
/// let signal: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
/// let mut scratch = SpectrumScratch::new(Window::Hann);
/// let batched = scratch.amplitude_spectrum(&signal)?.to_vec();
/// assert_eq!(batched, spectrum::try_amplitude_spectrum(&signal, Window::Hann)?);
/// # Ok::<(), psa_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SpectrumScratch {
    window: Window,
    n: usize,
    coeffs: Vec<f64>,
    coherent_gain: f64,
    rplan: Option<RfftPlan>,
    real: Vec<f64>,
    packed: Vec<Complex>,
    buf: Vec<Complex>,
    amp: Vec<f64>,
    acc: Vec<f64>,
}

impl SpectrumScratch {
    /// Creates an empty scratch for `window`; buffers are sized on first
    /// use.
    pub fn new(window: Window) -> Self {
        SpectrumScratch {
            window,
            n: 0,
            coeffs: Vec::new(),
            coherent_gain: 0.0,
            rplan: None,
            real: Vec::new(),
            packed: Vec::new(),
            buf: Vec::new(),
            amp: Vec::new(),
            acc: Vec::new(),
        }
    }

    /// The analysis window in use.
    pub fn window(&self) -> Window {
        self.window
    }

    /// (Re)computes the cached window/plan state for length `n`.
    fn ensure(&mut self, n: usize) -> Result<(), DspError> {
        if self.n == n {
            return Ok(());
        }
        self.coeffs = self.window.coefficients(n);
        self.coherent_gain = self.window.coherent_gain(n);
        self.rplan = if fft::is_power_of_two(n) {
            Some(RfftPlan::new(n)?)
        } else {
            None
        };
        self.n = n;
        Ok(())
    }

    /// One-sided amplitude spectrum of `signal`, borrowed from the
    /// internal buffer (valid until the next call). Bit-identical to
    /// [`spectrum::try_amplitude_spectrum`]: both run the same packed
    /// real-input transform ([`crate::rfft`]) over the same windowed
    /// samples.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] when `signal` is empty.
    pub fn amplitude_spectrum(&mut self, signal: &[f64]) -> Result<&[f64], DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let n = signal.len();
        self.ensure(n)?;

        let spec_half = fft::one_sided_len(n);
        if let Some(plan) = &self.rplan {
            // Window into the recycled real buffer: the products are the
            // same `signal[i] * w[i]` the one-shot path computes, and the
            // planned transform matches `rfft_one_sided` bit-for-bit.
            self.real.clear();
            self.real
                .extend(signal.iter().zip(&self.coeffs).map(|(&x, &w)| x * w));
            plan.forward_into(&self.real, &mut self.packed, &mut self.buf)?;
        } else {
            // Non-power-of-two records fall back to the Bluestein path
            // (allocating; no campaign record length hits this).
            let windowed: Vec<f64> = signal
                .iter()
                .zip(&self.coeffs)
                .map(|(&x, &w)| x * w)
                .collect();
            self.buf = crate::rfft::rfft_one_sided(&windowed)?;
        }

        let scale = 2.0 / (n as f64 * self.coherent_gain);
        self.amp.clear();
        self.amp.reserve(spec_half);
        for (k, z) in self.buf.iter().take(spec_half).enumerate() {
            let s = if k == 0 || (n % 2 == 0 && k == spec_half - 1) {
                scale / 2.0
            } else {
                scale
            };
            self.amp.push(z.abs() * s);
        }
        Ok(&self.amp)
    }

    /// Averaged one-sided amplitude spectrum over `records`, converted to
    /// dB — the acquisition hot path's full-resolution detector spectrum.
    /// Bit-identical to mapping [`spectrum::try_amplitude_spectrum`] over
    /// the records, [`spectrum::average_traces`], and
    /// [`spectrum::amplitude_db`].
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] when `records` is empty (or any
    /// record is), and [`DspError::InvalidLength`] when records have
    /// differing lengths.
    pub fn averaged_spectrum_db(&mut self, records: &[Vec<f64>]) -> Result<Vec<f64>, DspError> {
        let first = records.first().ok_or(DspError::EmptyInput)?;
        let n = first.len();
        let half = fft::one_sided_len(n);
        self.acc.clear();
        self.acc.resize(half, 0.0);
        // Swap the accumulator out so `amplitude_spectrum` can borrow
        // `self` mutably inside the loop.
        let mut acc = std::mem::take(&mut self.acc);
        for r in records {
            if r.len() != n {
                self.acc = acc;
                return Err(DspError::InvalidLength {
                    what: "trace length (all traces must match)",
                    got: r.len(),
                });
            }
            let amp = self.amplitude_spectrum(r)?;
            for (a, v) in acc.iter_mut().zip(amp) {
                *a += v;
            }
        }
        let k = records.len() as f64;
        let out: Vec<f64> = acc.iter().map(|a| spectrum::amplitude_db(a / k)).collect();
        self.acc = acc;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.11).sin() * (i as f64 * 0.037).cos() + 0.2)
            .collect()
    }

    #[test]
    fn plan_matches_adhoc_fft_bitwise() {
        for n in [1usize, 2, 8, 64, 1024] {
            let plan = FftPlan::new(n).unwrap();
            assert_eq!(plan.len(), n);
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
                .collect();
            let mut planned = x.clone();
            let mut adhoc = x;
            plan.forward(&mut planned).unwrap();
            fft::fft(&mut adhoc).unwrap();
            for (a, b) in planned.iter().zip(&adhoc) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn plan_rejects_bad_lengths() {
        assert!(FftPlan::new(0).is_err());
        assert!(FftPlan::new(12).is_err());
        let plan = FftPlan::new(8).unwrap();
        let mut short = vec![Complex::ZERO; 4];
        assert!(plan.forward(&mut short).is_err());
    }

    #[test]
    fn scratch_matches_oneshot_spectrum_bitwise() {
        for window in [Window::Hann, Window::FlatTop, Window::Rectangular] {
            let mut scratch = SpectrumScratch::new(window);
            for n in [256usize, 255, 4096] {
                let x = signal(n);
                let batched = scratch.amplitude_spectrum(&x).unwrap().to_vec();
                let oneshot = spectrum::try_amplitude_spectrum(&x, window).unwrap();
                assert_eq!(batched.len(), oneshot.len());
                for (a, b) in batched.iter().zip(&oneshot) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{window} n={n}");
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_is_history_independent() {
        // A worker context must give the same answer regardless of what
        // it processed before — the parallel-equivalence contract.
        let x = signal(512);
        let y = signal(1024);
        let mut fresh = SpectrumScratch::new(Window::Hann);
        let expected = fresh.amplitude_spectrum(&x).unwrap().to_vec();
        let mut used = SpectrumScratch::new(Window::Hann);
        used.amplitude_spectrum(&y).unwrap();
        used.averaged_spectrum_db(&[y.clone(), y]).unwrap();
        let got = used.amplitude_spectrum(&x).unwrap().to_vec();
        assert_eq!(expected, got);
    }

    #[test]
    fn averaged_db_matches_oneshot_pipeline_bitwise() {
        let records: Vec<Vec<f64>> = (0..4)
            .map(|k| {
                let mut r = signal(1024);
                for v in &mut r {
                    *v += k as f64 * 0.01;
                }
                r
            })
            .collect();
        let mut scratch = SpectrumScratch::new(Window::Hann);
        let batched = scratch.averaged_spectrum_db(&records).unwrap();
        let linear: Vec<Vec<f64>> = records
            .iter()
            .map(|r| spectrum::try_amplitude_spectrum(r, Window::Hann).unwrap())
            .collect();
        let avg = spectrum::average_traces(&linear).unwrap();
        let oneshot: Vec<f64> = avg.into_iter().map(spectrum::amplitude_db).collect();
        assert_eq!(batched.len(), oneshot.len());
        for (a, b) in batched.iter().zip(&oneshot) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn weighted_row_sum_matches_inline_loop_bitwise() {
        // The kernel must reproduce the historical field-layer loop
        // exactly: per row, w = k·scale, then sample-wise `acc += w·x`,
        // rows in order.
        let rows: Vec<Vec<f64>> = (0..7)
            .map(|r| {
                (0..64)
                    .map(|i| ((r * 64 + i) as f64 * 0.13).sin())
                    .collect()
            })
            .collect();
        let weights: Vec<f64> = (0..7).map(|r| 1.0e-3 * (r as f64 + 0.5)).collect();
        let scale = 3.0e-12;
        let pairs: Vec<(&[f64], f64)> = rows
            .iter()
            .zip(&weights)
            .map(|(r, &w)| (r.as_slice(), w))
            .collect();
        let mut kernel = vec![0.0; 64];
        weighted_row_sum_into(&pairs, scale, &mut kernel).unwrap();
        let mut inline = vec![0.0; 64];
        for (row, k) in &pairs {
            let w = k * scale;
            for (f, &i) in inline.iter_mut().zip(row.iter()) {
                *f += w * i;
            }
        }
        for (a, b) in kernel.iter().zip(&inline) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Accumulates rather than overwrites (second pass doubles, up to
        // rounding in the re-accumulation).
        weighted_row_sum_into(&pairs, scale, &mut kernel).unwrap();
        for (a, b) in kernel.iter().zip(&inline) {
            assert!((a - 2.0 * b).abs() <= 1e-12 * b.abs().max(1e-300));
        }
    }

    #[test]
    fn weighted_row_sum_validates_lengths() {
        let r0 = [1.0, 2.0];
        let r1 = [1.0, 2.0, 3.0];
        let mut acc = [0.0; 2];
        assert!(weighted_row_sum_into(&[(&r0, 1.0), (&r1, 1.0)], 1.0, &mut acc).is_err());
        // Error-before-touch: a bad batch leaves the accumulator alone.
        assert_eq!(acc, [0.0; 2]);
        assert!(weighted_row_sum_into(&[], 1.0, &mut acc).is_ok());
        assert_eq!(acc, [0.0; 2]);
    }

    #[test]
    fn averaged_db_validates_input() {
        let mut scratch = SpectrumScratch::new(Window::Hann);
        assert!(scratch.averaged_spectrum_db(&[]).is_err());
        assert!(scratch
            .averaged_spectrum_db(&[vec![1.0; 8], vec![1.0; 16]])
            .is_err());
        // And the scratch stays usable after an error.
        assert!(scratch.averaged_spectrum_db(&[vec![1.0; 8]]).is_ok());
    }
}
