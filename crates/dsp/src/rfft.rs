//! Real-input FFT via the N/2 complex-packing trick.
//!
//! Every trace the acquisition pipeline transforms is real-valued, yet a
//! complex FFT spends half its butterflies on the (zero) imaginary
//! lanes. This module packs a real record of even length `N` into an
//! `N/2`-point complex signal `z[m] = x[2m] + i·x[2m+1]`, runs one
//! half-length complex FFT, and unpacks the one-sided spectrum
//! `X[0..=N/2]` with an `O(N)` twiddle pass:
//!
//! ```text
//! Xe[k] = (Z[k] + conj(Z[N/2-k])) / 2        (FFT of even samples)
//! Xo[k] = (Z[k] - conj(Z[N/2-k])) / 2i       (FFT of odd samples)
//! X[k]  = Xe[k] + e^{-2πik/N} · Xo[k]
//! ```
//!
//! Cost per record drops from one `N`-point complex FFT to one
//! `N/2`-point FFT plus `O(N)` unpacking — close to a 2× reduction in
//! butterfly work for the 65 536-sample records of the hot path.
//!
//! # Equivalence to the complex path
//!
//! The packed transform evaluates the *same* DFT with a different
//! floating-point operation order, so results agree with
//! [`crate::fft::rfft`] to rounding: per bin within a few ulp of the
//! spectrum's magnitude scale (the sweep tests in this module assert
//! `|X_packed - X_complex| ≤ 1e-12 · max|X|` across sizes and seeds).
//! Outputs are **not** bit-identical to the complex path — callers that
//! need bitwise reproducibility must stay on one path; the spectrum
//! pipeline ([`crate::spectrum::try_amplitude_spectrum`] and
//! [`crate::batch::SpectrumScratch`]) switched to this path as a unit,
//! so batch-vs-oneshot remains bit-identical.

use crate::complex::Complex;
use crate::error::DspError;
use crate::fft;
use std::f64::consts::PI;

/// A precomputed real-input FFT of one fixed power-of-two length.
///
/// Owns the half-length [`FftPlan`](crate::batch::FftPlan) and the
/// unpacking twiddles `e^{-2πik/N}`; [`forward_into`](Self::forward_into)
/// then runs with zero allocations once the caller's buffers are warm.
///
/// # Example
///
/// ```
/// use psa_dsp::rfft::RfftPlan;
/// use psa_dsp::fft;
/// let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
/// let plan = RfftPlan::new(64)?;
/// let packed = plan.forward(&x)?;           // one-sided, 33 bins
/// let full = fft::rfft(&x)?;                // complex reference path
/// assert_eq!(packed.len(), fft::one_sided_len(64));
/// for (p, f) in packed.iter().zip(&full) {
///     assert!((*p - *f).abs() < 1e-9);
/// }
/// # Ok::<(), psa_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RfftPlan {
    n: usize,
    /// Half-length complex plan (`None` only for the degenerate `n == 1`).
    half: Option<crate::batch::FftPlan>,
    /// Unpacking twiddles `e^{-2πik/n}` for `k = 0..=n/2`.
    twiddles: Vec<Complex>,
}

impl RfftPlan {
    /// Plans a real-input FFT of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] unless `n` is a nonzero power
    /// of two.
    pub fn new(n: usize) -> Result<Self, DspError> {
        if !fft::is_power_of_two(n) {
            return Err(DspError::InvalidLength {
                what: "rfft plan size (must be a power of two)",
                got: n,
            });
        }
        if n == 1 {
            return Ok(RfftPlan {
                n,
                half: None,
                twiddles: Vec::new(),
            });
        }
        let h = n / 2;
        let step = -2.0 * PI / n as f64;
        Ok(RfftPlan {
            n,
            half: Some(crate::batch::FftPlan::new(h)?),
            twiddles: (0..=h).map(|k| Complex::cis(step * k as f64)).collect(),
        })
    }

    /// The planned (real) input length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: [`RfftPlan::new`] rejects length 0.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// One-sided output length: `n/2 + 1` bins (DC through Nyquist).
    pub fn output_len(&self) -> usize {
        fft::one_sided_len(self.n)
    }

    /// One-sided forward transform into caller-owned buffers.
    ///
    /// `packed` holds the half-length packed signal (scratch, cleared and
    /// refilled) and `out` receives the `n/2 + 1` one-sided bins; a hot
    /// loop reusing both buffers performs no allocations after the first
    /// call.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] when `input.len()` differs
    /// from the planned length.
    pub fn forward_into(
        &self,
        input: &[f64],
        packed: &mut Vec<Complex>,
        out: &mut Vec<Complex>,
    ) -> Result<(), DspError> {
        if input.len() != self.n {
            return Err(DspError::InvalidLength {
                what: "rfft plan input (length must match the plan)",
                got: input.len(),
            });
        }
        out.clear();
        let Some(half_plan) = &self.half else {
            // n == 1: the DFT of one sample is itself.
            out.push(Complex::new(input[0], 0.0));
            return Ok(());
        };
        let h = self.n / 2;

        // Pack x[2m] + i·x[2m+1] and run the half-length complex FFT.
        packed.clear();
        packed.extend(input.chunks_exact(2).map(|p| Complex::new(p[0], p[1])));
        half_plan.forward(packed)?;

        // Unpack: even/odd split via conjugate symmetry, then the twiddle
        // rotation recombines them into the one-sided spectrum.
        out.reserve(h + 1);
        let z0 = packed[0];
        out.push(Complex::new(z0.re + z0.im, 0.0)); // DC
        for k in 1..h {
            let zk = packed[k];
            let zc = packed[h - k].conj();
            let xe = Complex::new((zk.re + zc.re) * 0.5, (zk.im + zc.im) * 0.5);
            let d = zk - zc;
            // Xo = d / 2i = (d · -i) / 2.
            let xo = Complex::new(d.im * 0.5, -d.re * 0.5);
            out.push(xe + self.twiddles[k] * xo);
        }
        out.push(Complex::new(z0.re - z0.im, 0.0)); // Nyquist
        Ok(())
    }

    /// One-sided forward transform, allocating fresh buffers.
    ///
    /// # Errors
    ///
    /// Same as [`forward_into`](Self::forward_into).
    pub fn forward(&self, input: &[f64]) -> Result<Vec<Complex>, DspError> {
        let mut packed = Vec::new();
        let mut out = Vec::new();
        self.forward_into(input, &mut packed, &mut out)?;
        Ok(out)
    }
}

/// One-sided spectrum (`n/2 + 1` bins) of a real signal of any length.
///
/// Power-of-two lengths take the packed half-length path; other lengths
/// fall back to the full complex transform (Bluestein for non powers of
/// two) truncated to one side. This is the kernel behind
/// [`crate::spectrum::try_amplitude_spectrum`].
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when `input` is empty.
pub fn rfft_one_sided(input: &[f64]) -> Result<Vec<Complex>, DspError> {
    if input.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = input.len();
    if fft::is_power_of_two(n) {
        RfftPlan::new(n)?.forward(input)
    } else {
        let mut full = fft::rfft(input)?;
        full.truncate(fft::one_sided_len(n));
        Ok(full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random signal for a given seed.
    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    fn max_mag(spec: &[Complex]) -> f64 {
        spec.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    #[test]
    fn packed_matches_complex_path_across_sizes_and_seeds() {
        // The tentpole equivalence sweep: packed rfft vs the complex
        // reference across power-of-two sizes and several seeds, bounded
        // at 1e-12 of the spectrum scale (a few ulp).
        for n in [2usize, 4, 8, 64, 256, 1024, 4096, 65536] {
            for seed in [1u64, 7, 42] {
                let x = noise(n, seed.wrapping_add(n as u64));
                let packed = rfft_one_sided(&x).unwrap();
                let full = fft::rfft(&x).unwrap();
                assert_eq!(packed.len(), fft::one_sided_len(n));
                let scale = max_mag(&full).max(1.0);
                for (k, (p, f)) in packed.iter().zip(&full).enumerate() {
                    let err = (*p - *f).abs();
                    assert!(
                        err <= 1e-12 * scale,
                        "n={n} seed={seed} bin {k}: |Δ|={err:e} scale={scale:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_and_odd_lengths() {
        // n == 1: identity.
        let one = rfft_one_sided(&[3.25]).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0], Complex::new(3.25, 0.0));
        // n == 2: sum and difference.
        let two = rfft_one_sided(&[1.5, -0.5]).unwrap();
        assert_eq!(two.len(), 2);
        assert!((two[0].re - 1.0).abs() < 1e-15 && two[0].im == 0.0);
        assert!((two[1].re - 2.0).abs() < 1e-15 && two[1].im == 0.0);
        // Odd lengths go through the Bluestein fallback.
        let x = noise(255, 9);
        let spec = rfft_one_sided(&x).unwrap();
        let full = fft::rfft(&x).unwrap();
        assert_eq!(spec.len(), 128);
        let scale = max_mag(&full).max(1.0);
        for (p, f) in spec.iter().zip(&full) {
            assert!((*p - *f).abs() <= 1e-9 * scale);
        }
        // Empty input is rejected.
        assert!(matches!(rfft_one_sided(&[]), Err(DspError::EmptyInput)));
    }

    #[test]
    fn tone_amplitude_and_bin_are_exact() {
        let n = 256;
        let fs = 1000.0;
        let f0 = 125.0; // exactly bin 32
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * f0 * i as f64 / fs).cos())
            .collect();
        let spec = rfft_one_sided(&x).unwrap();
        let bin = fft::freq_bin(f0, n, fs);
        assert!((spec[bin].abs() - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn plan_validates_lengths_and_reports_shape() {
        assert!(RfftPlan::new(0).is_err());
        assert!(RfftPlan::new(12).is_err());
        let plan = RfftPlan::new(16).unwrap();
        assert_eq!(plan.len(), 16);
        assert!(!plan.is_empty());
        assert_eq!(plan.output_len(), 9);
        assert!(plan.forward(&[0.0; 8]).is_err());
    }

    #[test]
    fn forward_into_reuses_buffers_and_matches_forward() {
        let plan = RfftPlan::new(128).unwrap();
        let x = noise(128, 3);
        let y = noise(128, 4);
        let mut packed = Vec::new();
        let mut out = Vec::new();
        plan.forward_into(&x, &mut packed, &mut out).unwrap();
        let fresh_x = plan.forward(&x).unwrap();
        assert_eq!(out, fresh_x);
        // Stale buffer contents must not leak into a second transform.
        plan.forward_into(&y, &mut packed, &mut out).unwrap();
        let fresh_y = plan.forward(&y).unwrap();
        assert_eq!(out, fresh_y);
    }

    #[test]
    fn parseval_energy_conserved_one_sided() {
        let x = noise(512, 11);
        let spec = rfft_one_sided(&x).unwrap();
        let n = x.len();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        // One-sided Parseval: interior bins count twice (conjugate pair).
        let mut freq_energy = spec[0].norm_sqr() + spec[n / 2].norm_sqr();
        for z in &spec[1..n / 2] {
            freq_energy += 2.0 * z.norm_sqr();
        }
        freq_energy /= n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }
}
