//! Error type shared by the DSP routines.

use std::error::Error;
use std::fmt;

/// Errors produced by DSP routines.
///
/// Display messages are lowercase without trailing punctuation per the Rust
/// API guidelines (C-GOOD-ERR).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DspError {
    /// The input slice was empty where a non-empty signal is required.
    EmptyInput,
    /// A length argument was invalid (zero, or inconsistent with the data).
    InvalidLength {
        /// Human-readable name of the offending parameter.
        what: &'static str,
        /// The value that was rejected.
        got: usize,
    },
    /// A frequency argument fell outside the representable range
    /// `[0, fs/2]`.
    FrequencyOutOfRange {
        /// The requested frequency in hertz.
        freq_hz: f64,
        /// The sample rate in hertz the frequency was checked against.
        fs_hz: f64,
    },
    /// A parameter that must be strictly positive was not.
    NonPositive {
        /// Human-readable name of the offending parameter.
        what: &'static str,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::EmptyInput => write!(f, "input signal is empty"),
            DspError::InvalidLength { what, got } => {
                write!(f, "invalid length for {what}: {got}")
            }
            DspError::FrequencyOutOfRange { freq_hz, fs_hz } => {
                write!(f, "frequency {freq_hz} Hz outside [0, {}] Hz", fs_hz / 2.0)
            }
            DspError::NonPositive { what } => {
                write!(f, "{what} must be strictly positive")
            }
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_period() {
        let msgs = [
            DspError::EmptyInput.to_string(),
            DspError::InvalidLength {
                what: "fft size",
                got: 0,
            }
            .to_string(),
            DspError::FrequencyOutOfRange {
                freq_hz: 1e9,
                fs_hz: 1e6,
            }
            .to_string(),
            DspError::NonPositive {
                what: "sample rate",
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_e: &(dyn Error + Send + Sync)) {}
        takes_err(&DspError::EmptyInput);
    }
}
