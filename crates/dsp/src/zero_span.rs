//! Zero-span mode: recover the time-domain envelope of one frequency
//! component.
//!
//! The paper's key identification step (Sec. VI-D, Fig 5) tunes the
//! spectrum analyzer to a prominent frequency component (48 MHz) and uses
//! *zero-span* mode to observe that component's amplitude versus time —
//! different Trojans imprint different modulation envelopes on the same
//! sideband. Digitally this is a down-conversion: multiply by a complex
//! exponential at the tuned frequency, low-pass to the resolution
//! bandwidth, decimate, and take the magnitude.
//!
//! Selectivity matters here: neighbouring spectral lines sit only a few
//! megahertz away (the 51 MHz member of the same sideband family, the
//! AES block-rate lines at ±1.25 MHz), so the filter is implemented in
//! **two decimating stages** — a wide anti-alias low-pass at the input
//! rate, then a sharp low-pass at the decimated rate where narrow
//! transition bands are affordable.

use crate::complex::Complex;
use crate::error::DspError;
use crate::filter::FirFilter;
use crate::window::Window;
use std::f64::consts::PI;

/// Configuration of a zero-span measurement.
///
/// # Example
///
/// ```
/// use psa_dsp::zero_span::ZeroSpan;
///
/// let zs = ZeroSpan::new(48.0e6, 264.0e6)?; // tune 48 MHz at 264 MS/s
/// assert_eq!(zs.center_hz(), 48.0e6);
/// assert!(zs.output_fs_hz() > 2.0 * zs.rbw_hz());
/// # Ok::<(), psa_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ZeroSpan {
    center_hz: f64,
    fs_hz: f64,
    rbw_hz: f64,
    stage1: FirFilter,
    decim1: usize,
    stage2: FirFilter,
    decim2: usize,
}

impl ZeroSpan {
    /// Default resolution bandwidth when not specified: 3 MHz, wide
    /// enough to follow megahertz-scale envelopes.
    pub const DEFAULT_RBW_HZ: f64 = 3.0e6;

    /// Creates a zero-span demodulator at `center_hz` for input sampled
    /// at `fs_hz`, with the default resolution bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::FrequencyOutOfRange`] when the centre
    /// frequency is outside `(0, fs/2)`, or [`DspError::NonPositive`]
    /// for a bad sample rate.
    pub fn new(center_hz: f64, fs_hz: f64) -> Result<Self, DspError> {
        Self::with_rbw(center_hz, fs_hz, Self::DEFAULT_RBW_HZ)
    }

    /// Creates a zero-span demodulator with an explicit resolution
    /// bandwidth `rbw_hz` (the low-pass cutoff after mixing).
    ///
    /// # Errors
    ///
    /// Same as [`ZeroSpan::new`], plus [`DspError::NonPositive`] when
    /// `rbw_hz <= 0`.
    pub fn with_rbw(center_hz: f64, fs_hz: f64, rbw_hz: f64) -> Result<Self, DspError> {
        if fs_hz <= 0.0 {
            return Err(DspError::NonPositive {
                what: "sample rate",
            });
        }
        if center_hz <= 0.0 || center_hz >= fs_hz / 2.0 {
            return Err(DspError::FrequencyOutOfRange {
                freq_hz: center_hz,
                fs_hz,
            });
        }
        if rbw_hz <= 0.0 {
            return Err(DspError::NonPositive {
                what: "resolution bandwidth",
            });
        }
        let rbw = rbw_hz.min(fs_hz / 8.0);

        // Stage 1: anti-alias for the first decimation. Decimate as far
        // as the 129-tap transition allows while keeping the band of
        // interest clean.
        let decim1 = ((fs_hz / (10.0 * rbw)).floor() as usize).clamp(1, 16);
        let fs1 = fs_hz / decim1 as f64;
        let cutoff1 = (0.4 * fs1).min(0.45 * fs_hz);
        let stage1 = FirFilter::low_pass(cutoff1, fs_hz, 129, Window::Hamming)?;

        // Stage 2: the sharp RBW filter at the decimated rate, where
        // 301 taps give a transition band of a few percent of fs1.
        let stage2 = FirFilter::low_pass(rbw, fs1, 301, Window::Hamming)?;
        let decim2 = ((fs1 / (8.0 * rbw)).floor() as usize).max(1);

        Ok(ZeroSpan {
            center_hz,
            fs_hz,
            rbw_hz: rbw,
            stage1,
            decim1,
            stage2,
            decim2,
        })
    }

    /// Tuned centre frequency in hertz.
    pub fn center_hz(&self) -> f64 {
        self.center_hz
    }

    /// Input sample rate in hertz.
    pub fn fs_hz(&self) -> f64 {
        self.fs_hz
    }

    /// Resolution bandwidth in hertz.
    pub fn rbw_hz(&self) -> f64 {
        self.rbw_hz
    }

    /// Output sample rate after both decimations.
    pub fn output_fs_hz(&self) -> f64 {
        self.fs_hz / (self.decim1 * self.decim2) as f64
    }

    /// Demodulates `signal`, returning the complex baseband at the
    /// decimated rate.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] when `signal` is empty.
    pub fn demodulate(&self, signal: &[f64]) -> Result<Vec<Complex>, DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let w = 2.0 * PI * self.center_hz / self.fs_hz;
        // Mix to baseband: x[n]·e^{-jωn}.
        let i_mixed: Vec<f64> = signal
            .iter()
            .enumerate()
            .map(|(n, &x)| x * (w * n as f64).cos())
            .collect();
        let q_mixed: Vec<f64> = signal
            .iter()
            .enumerate()
            .map(|(n, &x)| -x * (w * n as f64).sin())
            .collect();
        // Stage 1 filter + decimate.
        let i1: Vec<f64> = self
            .stage1
            .filter(&i_mixed)
            .into_iter()
            .step_by(self.decim1)
            .collect();
        let q1: Vec<f64> = self
            .stage1
            .filter(&q_mixed)
            .into_iter()
            .step_by(self.decim1)
            .collect();
        // Stage 2 filter + decimate.
        let i2: Vec<f64> = self
            .stage2
            .filter(&i1)
            .into_iter()
            .step_by(self.decim2)
            .collect();
        let q2: Vec<f64> = self
            .stage2
            .filter(&q1)
            .into_iter()
            .step_by(self.decim2)
            .collect();
        Ok(i2
            .into_iter()
            .zip(q2)
            .map(|(i, q)| Complex::new(i, q))
            .collect())
    }

    /// Returns the amplitude envelope of the tuned component versus time —
    /// the zero-span "screen trace" (Fig 5). The scale matches tone
    /// amplitude: a pure tone of amplitude `A` at the centre frequency
    /// produces an envelope of `A`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] when `signal` is empty.
    pub fn envelope(&self, signal: &[f64]) -> Result<Vec<f64>, DspError> {
        Ok(self
            .demodulate(signal)?
            .into_iter()
            .map(|z| 2.0 * z.abs())
            .collect())
    }

    /// Envelope with the filters' edge transients trimmed.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] when `signal` is empty, or
    /// [`DspError::InvalidLength`] when it is shorter than the combined
    /// transient.
    pub fn envelope_trimmed(&self, signal: &[f64]) -> Result<Vec<f64>, DspError> {
        let env = self.envelope(signal)?;
        let trim1 = self.stage1.taps().len() / (self.decim1 * self.decim2);
        let trim2 = self.stage2.taps().len() / self.decim2;
        let trim = (trim1 + trim2).max(1);
        if env.len() <= 2 * trim {
            return Err(DspError::InvalidLength {
                what: "signal too short for zero-span transient trim",
                got: env.len(),
            });
        }
        Ok(env[trim..env.len() - trim].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tone_at_center_gives_flat_envelope_at_amplitude() {
        let fs = 264.0e6;
        let f0 = 48.0e6;
        let zs = ZeroSpan::new(f0, fs).unwrap();
        let n = 65536;
        let x: Vec<f64> = (0..n)
            .map(|i| 0.8 * (2.0 * PI * f0 * i as f64 / fs).sin())
            .collect();
        let env = zs.envelope_trimmed(&x).unwrap();
        let mean = env.iter().sum::<f64>() / env.len() as f64;
        assert!((mean - 0.8).abs() < 0.02, "mean {mean}");
        let max_dev = env.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max);
        assert!(max_dev < 0.05, "max deviation {max_dev}");
    }

    #[test]
    fn off_tune_tone_is_rejected() {
        let fs = 264.0e6;
        let zs = ZeroSpan::new(48.0e6, fs).unwrap();
        let n = 65536;
        // 33 MHz clock fundamental, 15 MHz away: far outside the RBW.
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 33.0e6 * i as f64 / fs).sin())
            .collect();
        let env = zs.envelope_trimmed(&x).unwrap();
        let mean = env.iter().sum::<f64>() / env.len() as f64;
        assert!(mean < 5e-3, "leakage {mean}");
    }

    #[test]
    fn narrow_rbw_rejects_3mhz_neighbour() {
        // The 51 MHz member of the sideband family is 3 MHz from the
        // 48 MHz line; a 1 MHz RBW must suppress it decisively.
        let fs = 264.0e6;
        let zs = ZeroSpan::with_rbw(48.0e6, fs, 0.95e6).unwrap();
        let n = 262_144;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                1.0 * (2.0 * PI * 51.0e6 * t).sin()
            })
            .collect();
        let env = zs.envelope_trimmed(&x).unwrap();
        let mean = env.iter().sum::<f64>() / env.len() as f64;
        assert!(mean < 0.02, "3 MHz neighbour leaks {mean}");
    }

    #[test]
    fn narrow_rbw_passes_750khz_am() {
        let fs = 264.0e6;
        let f0 = 48.0e6;
        let fm = 750.0e3;
        let zs = ZeroSpan::with_rbw(f0, fs, 0.95e6).unwrap();
        let n = 262_144;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (1.0 + 0.5 * (2.0 * PI * fm * t).sin()) * (2.0 * PI * f0 * t).cos()
            })
            .collect();
        let env = zs.envelope_trimmed(&x).unwrap();
        let mean = env.iter().sum::<f64>() / env.len() as f64;
        let crossings = env
            .windows(2)
            .filter(|w| (w[0] < mean) != (w[1] < mean))
            .count();
        let duration = env.len() as f64 / zs.output_fs_hz();
        let est = crossings as f64 / 2.0 / duration;
        assert!((est - fm).abs() / fm < 0.15, "envelope frequency {est}");
    }

    #[test]
    fn am_modulation_recovered() {
        let fs = 264.0e6;
        let f0 = 48.0e6;
        let fm = 750.0e3;
        let m = 0.5;
        let zs = ZeroSpan::new(f0, fs).unwrap();
        let n = 65536;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (1.0 + m * (2.0 * PI * fm * t).sin()) * (2.0 * PI * f0 * t).cos()
            })
            .collect();
        let env = zs.envelope_trimmed(&x).unwrap();
        let max = env.iter().cloned().fold(0.0, f64::max);
        let min = env.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((max - 1.5).abs() < 0.1, "max {max}");
        assert!((min - 0.5).abs() < 0.1, "min {min}");
    }

    #[test]
    fn validates_parameters() {
        assert!(ZeroSpan::new(0.0, 1e6).is_err());
        assert!(ZeroSpan::new(6e5, 1e6).is_err());
        assert!(ZeroSpan::new(1e3, 0.0).is_err());
        assert!(ZeroSpan::with_rbw(48e6, 264e6, 0.0).is_err());
        let zs = ZeroSpan::new(48e6, 264e6).unwrap();
        assert!(zs.envelope(&[]).is_err());
    }

    #[test]
    fn accessors_report_configuration() {
        let zs = ZeroSpan::with_rbw(10.0e6, 264.0e6, 2.0e6).unwrap();
        assert_eq!(zs.center_hz(), 10.0e6);
        assert_eq!(zs.fs_hz(), 264.0e6);
        assert_eq!(zs.rbw_hz(), 2.0e6);
        assert!(zs.output_fs_hz() > 2.0 * zs.rbw_hz());
        // Oversized RBW clamps to fs/8.
        let wide = ZeroSpan::with_rbw(48.0e6, 264.0e6, 1.0e9).unwrap();
        assert_eq!(wide.rbw_hz(), 264.0e6 / 8.0);
    }

    #[test]
    fn two_tone_selects_only_tuned_component() {
        let fs = 264.0e6;
        let zs = ZeroSpan::with_rbw(84.0e6, fs, 2.0e6).unwrap();
        let n = 65536;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                0.3 * (2.0 * PI * 84.0e6 * t).sin() + 1.0 * (2.0 * PI * 48.0e6 * t).sin()
            })
            .collect();
        let env = zs.envelope_trimmed(&x).unwrap();
        let mean = env.iter().sum::<f64>() / env.len() as f64;
        assert!((mean - 0.3).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn short_signal_trim_error() {
        let zs = ZeroSpan::new(48.0e6, 264.0e6).unwrap();
        assert!(matches!(
            zs.envelope_trimmed(&vec![0.0; 64]),
            Err(DspError::InvalidLength { .. })
        ));
    }
}
