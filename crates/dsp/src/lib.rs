//! Digital signal processing substrate for the PSA reproduction.
//!
//! The paper *Programmable EM Sensor Array for Golden-Model Free Run-time
//! Trojan Detection and Localization* (DATE 2024) analyses electromagnetic
//! side-channel traces with bench instruments: an oscilloscope, a spectrum
//! analyzer (including its *zero-span* mode), and offline spectral analysis.
//! This crate implements the mathematics behind those instruments from
//! scratch so the rest of the workspace can regenerate every figure without
//! any external DSP dependency:
//!
//! * [`Complex`] — minimal complex arithmetic used throughout.
//! * [`fft`] — iterative radix-2 FFT plus a Bluestein fallback for
//!   arbitrary lengths, forward/inverse, and real-input helpers.
//! * [`rfft`] — real-input FFT via the N/2 complex-packing trick, the
//!   transform behind every amplitude spectrum in the hot path (≈2×
//!   less butterfly work than the complex path).
//! * [`batch`] — plan-once/run-many FFT and spectrum kernels with
//!   reusable scratch buffers for the campaign engine's hot path
//!   (bit-identical to the one-shot functions).
//! * [`sliding`] — incrementally maintained sliding-window averaged
//!   spectra for the streaming run-time monitor (exact cached-row mode
//!   and an O(bins) accumulator mode with periodic resync).
//! * [`window`] — Rectangular/Hann/Hamming/Blackman/Blackman-Harris/flat-top
//!   analysis windows with gain bookkeeping.
//! * [`spectrum`] — amplitude spectra, periodograms, Welch averaging, STFT,
//!   and dB conversions; this is the "spectrum analyzer screen".
//! * [`filter`] — windowed-sinc FIR design (low-pass/band-pass), linear
//!   convolution and decimation.
//! * [`zero_span`] — digital down-conversion replicating the spectrum
//!   analyzer's zero-span mode: mix to baseband, low-pass, decimate, take
//!   the envelope at one chosen frequency.
//! * [`stats`] — running and batch statistics (RMS, variance, percentiles,
//!   skewness/kurtosis) used by the SNR procedure and feature extraction.
//! * [`peak`] — prominence-based spectral peak detection used by the
//!   cross-domain analysis to find emergent Trojan sidebands.
//! * [`correlate`] — auto/cross correlation for envelope classification.
//!
//! # Example
//!
//! ```
//! use psa_dsp::{spectrum, window::Window};
//!
//! // A 1 kHz tone sampled at 8 kHz shows up in bin 128 of a 1024-point FFT.
//! let fs = 8000.0;
//! let n = 1024;
//! let tone: Vec<f64> = (0..n)
//!     .map(|i| (2.0 * std::f64::consts::PI * 1000.0 * i as f64 / fs).sin())
//!     .collect();
//! let spec = spectrum::amplitude_spectrum(&tone, Window::Rectangular);
//! let peak_bin = spec
//!     .iter()
//!     .enumerate()
//!     .max_by(|a, b| a.1.total_cmp(b.1))
//!     .map(|(i, _)| i)
//!     .unwrap();
//! assert_eq!(peak_bin, 128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod complex;
pub mod correlate;
pub mod error;
pub mod fft;
pub mod filter;
pub mod peak;
pub mod rfft;
pub mod rng;
pub mod sliding;
pub mod spectrum;
pub mod stats;
pub mod window;
pub mod zero_span;

pub use complex::Complex;
pub use error::DspError;
