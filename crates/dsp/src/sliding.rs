//! Sliding-window averaged spectra, maintained incrementally.
//!
//! The streaming run-time monitor averages the amplitude spectra of the
//! last `K` records every tick. Recomputing that from the raw ring costs
//! `K` FFTs per tick; this module keeps the per-record amplitude rows
//! (each produced by **one** FFT when its record arrives) and maintains
//! the window average from them, in one of two modes:
//!
//! * [`SlidingMode::Exact`] (default) — re-sums the `K` cached rows in
//!   ring order every query. The f64 additions happen in the same order
//!   as [`crate::batch::SpectrumScratch::averaged_spectrum_db`] over the
//!   same records, so the averaged dB spectrum is **bit-identical** to a
//!   fresh full-window recompute — one FFT per tick instead of `K`, with
//!   no change in output bytes.
//! * [`SlidingMode::Incremental`] — the classic sliding-DFT-style
//!   update: one add and one subtract per bin per tick (`O(bins)`
//!   regardless of `K`), at the price of floating-point drift relative
//!   to a fresh summation. Drift is bounded by an exact recompute every
//!   `resync_every` window rolls (and can be forced with
//!   [`SlidingSpectrum::resync`]); the tests bound the drift between
//!   resyncs over long runs.

use crate::error::DspError;
use crate::spectrum;
use std::collections::VecDeque;

/// How a [`SlidingSpectrum`] maintains its window average.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlidingMode {
    /// Re-sum the cached rows on every query: bit-identical to a fresh
    /// full-window recompute (the determinism-preserving default).
    #[default]
    Exact,
    /// Per-bin add/subtract accumulator updated in `O(bins)` per roll,
    /// with an exact recompute forced every `resync_every` rolls to
    /// bound floating-point drift. `resync_every == 1` degenerates to a
    /// fresh summation on every roll.
    Incremental {
        /// Window rolls between forced exact recomputes (≥ 1).
        resync_every: usize,
    },
}

/// A ring of per-record amplitude-spectrum rows plus the machinery to
/// query their average in dB.
///
/// Buffers recycle: once the ring is full, each [`push_row`] reuses the
/// evicted row's allocation, so the steady-state stream allocates
/// nothing.
///
/// # Example
///
/// ```
/// use psa_dsp::sliding::{SlidingMode, SlidingSpectrum};
/// let mut s = SlidingSpectrum::new(3, SlidingMode::Exact)?;
/// for t in 0..5u32 {
///     let row: Vec<f64> = (0..4).map(|k| (t * 4 + k) as f64).collect();
///     s.push_row(&row)?;
/// }
/// assert_eq!(s.len(), 3); // rows 2, 3, 4 remain
/// let mut db = Vec::new();
/// s.averaged_db_into(&mut db)?;
/// assert_eq!(db.len(), 4);
/// # Ok::<(), psa_dsp::DspError>(())
/// ```
///
/// [`push_row`]: Self::push_row
#[derive(Debug, Clone)]
pub struct SlidingSpectrum {
    capacity: usize,
    mode: SlidingMode,
    /// Cached rows, oldest first.
    rows: VecDeque<Vec<f64>>,
    /// Incremental-mode running per-bin sum (unused in exact mode).
    acc: Vec<f64>,
    /// Window rolls since the last exact recompute of `acc`.
    rolls_since_resync: usize,
}

impl SlidingSpectrum {
    /// A sliding spectrum over the last `capacity` rows.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] when `capacity` is zero or an
    /// incremental `resync_every` is zero.
    pub fn new(capacity: usize, mode: SlidingMode) -> Result<Self, DspError> {
        if capacity == 0 {
            return Err(DspError::InvalidLength {
                what: "sliding window capacity",
                got: 0,
            });
        }
        if let SlidingMode::Incremental { resync_every } = mode {
            if resync_every == 0 {
                return Err(DspError::InvalidLength {
                    what: "sliding resync interval",
                    got: 0,
                });
            }
        }
        Ok(SlidingSpectrum {
            capacity,
            mode,
            rows: VecDeque::with_capacity(capacity),
            acc: Vec::new(),
            rolls_since_resync: 0,
        })
    }

    /// The window depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows currently held (≤ capacity during warm fill).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` while no row has been pushed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The update mode in use.
    pub fn mode(&self) -> SlidingMode {
        self.mode
    }

    /// Pushes one record's amplitude row, evicting the oldest once the
    /// window is full (the evicted allocation is recycled for the copy).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty row and
    /// [`DspError::InvalidLength`] when `row`'s bin count differs from
    /// the rows already held.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), DspError> {
        if row.is_empty() {
            return Err(DspError::EmptyInput);
        }
        if let Some(first) = self.rows.front() {
            if first.len() != row.len() {
                return Err(DspError::InvalidLength {
                    what: "sliding spectrum row (bin count must match the window)",
                    got: row.len(),
                });
            }
        }
        let evicted = if self.rows.len() == self.capacity {
            self.rows.pop_front()
        } else {
            None
        };
        let mut needs_resync = false;
        if let SlidingMode::Incremental { resync_every } = self.mode {
            if self.acc.len() != row.len() {
                self.acc.clear();
                self.acc.resize(row.len(), 0.0);
                for r in &self.rows {
                    for (a, v) in self.acc.iter_mut().zip(r) {
                        *a += v;
                    }
                }
            }
            if let Some(old) = &evicted {
                for ((a, new), old) in self.acc.iter_mut().zip(row).zip(old) {
                    *a += new - old;
                }
            } else {
                for (a, new) in self.acc.iter_mut().zip(row) {
                    *a += new;
                }
            }
            self.rolls_since_resync += 1;
            needs_resync = self.rolls_since_resync >= resync_every;
        }
        let mut slot = evicted.unwrap_or_default();
        slot.clear();
        slot.extend_from_slice(row);
        self.rows.push_back(slot);
        if needs_resync {
            self.resync();
        }
        Ok(())
    }

    /// Forces an exact recompute of the incremental accumulator from the
    /// cached rows (no-op in exact mode, where every query already is
    /// one).
    pub fn resync(&mut self) {
        self.rolls_since_resync = 0;
        if !matches!(self.mode, SlidingMode::Incremental { .. }) {
            return;
        }
        let bins = self.rows.front().map_or(0, Vec::len);
        self.acc.clear();
        self.acc.resize(bins, 0.0);
        for r in &self.rows {
            for (a, v) in self.acc.iter_mut().zip(r) {
                *a += v;
            }
        }
    }

    /// Drops every cached row (the next push restarts the warm fill).
    pub fn clear(&mut self) {
        self.rows.clear();
        self.acc.clear();
        self.rolls_since_resync = 0;
    }

    /// The window-averaged spectrum in dB, into a caller-owned buffer
    /// (cleared first).
    ///
    /// Exact mode sums the rows oldest→newest — the identical f64
    /// sequence [`crate::batch::SpectrumScratch::averaged_spectrum_db`]
    /// executes over the same records, hence bit-identical output.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] when no row has been pushed.
    pub fn averaged_db_into(&self, out: &mut Vec<f64>) -> Result<(), DspError> {
        let first = self.rows.front().ok_or(DspError::EmptyInput)?;
        let bins = first.len();
        let k = self.rows.len() as f64;
        out.clear();
        match self.mode {
            SlidingMode::Exact => {
                out.resize(bins, 0.0);
                for r in &self.rows {
                    for (a, v) in out.iter_mut().zip(r) {
                        *a += v;
                    }
                }
                for a in out.iter_mut() {
                    *a = spectrum::amplitude_db(*a / k);
                }
            }
            SlidingMode::Incremental { .. } => {
                out.extend(self.acc.iter().map(|a| spectrum::amplitude_db(a / k)));
            }
        }
        Ok(())
    }

    /// [`averaged_db_into`](Self::averaged_db_into) allocating the
    /// output.
    ///
    /// # Errors
    ///
    /// Same as [`averaged_db_into`](Self::averaged_db_into).
    pub fn averaged_db(&self) -> Result<Vec<f64>, DspError> {
        let mut out = Vec::new();
        self.averaged_db_into(&mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::SpectrumScratch;
    use crate::window::Window;

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    /// Reference: fresh full-window average through the scratch pipeline.
    fn fresh_window_db(scratch: &mut SpectrumScratch, records: &[Vec<f64>]) -> Vec<f64> {
        scratch.averaged_spectrum_db(records).unwrap()
    }

    #[test]
    fn exact_mode_is_bit_identical_to_fresh_recompute() {
        let depth = 5;
        let mut scratch = SpectrumScratch::new(Window::Hann);
        let mut sliding = SlidingSpectrum::new(depth, SlidingMode::Exact).unwrap();
        let mut window: Vec<Vec<f64>> = Vec::new();
        let mut out = Vec::new();
        for t in 0..20u64 {
            let record = noise(512, t);
            let row = scratch.amplitude_spectrum(&record).unwrap().to_vec();
            sliding.push_row(&row).unwrap();
            window.push(record);
            if window.len() > depth {
                window.remove(0);
            }
            sliding.averaged_db_into(&mut out).unwrap();
            let fresh = fresh_window_db(&mut scratch, &window);
            assert_eq!(out.len(), fresh.len());
            for (a, b) in out.iter().zip(&fresh) {
                assert_eq!(a.to_bits(), b.to_bits(), "tick {t}");
            }
        }
    }

    #[test]
    fn incremental_mode_drift_is_bounded_and_resync_restores_exactness() {
        let depth = 5;
        let resync = 64;
        let mut scratch = SpectrumScratch::new(Window::Hann);
        let mut sliding = SlidingSpectrum::new(
            depth,
            SlidingMode::Incremental {
                resync_every: resync,
            },
        )
        .unwrap();
        let mut window: Vec<Vec<f64>> = Vec::new();
        let mut out = Vec::new();
        let mut max_drift: f64 = 0.0;
        for t in 0..300u64 {
            let record = noise(256, t.wrapping_mul(31).wrapping_add(7));
            let row = scratch.amplitude_spectrum(&record).unwrap().to_vec();
            sliding.push_row(&row).unwrap();
            window.push(record);
            if window.len() > depth {
                window.remove(0);
            }
            sliding.averaged_db_into(&mut out).unwrap();
            let fresh = fresh_window_db(&mut scratch, &window);
            for (a, b) in out.iter().zip(&fresh) {
                max_drift = max_drift.max((a - b).abs());
            }
        }
        // Drift between resyncs over a long run stays far below any
        // detection threshold (dB domain; thresholds are ~10 dB).
        assert!(max_drift < 1e-6, "max drift {max_drift} dB");
        // A forced resync makes the accumulator exactly equal a fresh
        // summation again.
        sliding.resync();
        sliding.averaged_db_into(&mut out).unwrap();
        let fresh = fresh_window_db(&mut scratch, &window);
        for (a, b) in out.iter().zip(&fresh) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn incremental_long_session_with_drift_ramps_stays_within_resync_bound() {
        // A fleet-scale session: ≥10k records through one ring, under
        // the drift shapes a thermally settling front end produces — a
        // slow gain ramp plus a wandering tone on one bin. The
        // incremental accumulator's float drift against an exact ring
        // fed the same rows must stay within the resync bound for the
        // whole session, not just the short runs the other tests cover.
        let depth = 5;
        let bins = 128;
        let mut inc =
            SlidingSpectrum::new(depth, SlidingMode::Incremental { resync_every: 256 }).unwrap();
        let mut exact = SlidingSpectrum::new(depth, SlidingMode::Exact).unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let mut max_drift: f64 = 0.0;
        let ticks = 10_240u64;
        for t in 0..ticks {
            let ramp = 1.0 + 2.0e-4 * t as f64;
            let tone = (t as f64 * 1e-3).sin().mul_add(0.5, 1.0);
            let row: Vec<f64> = noise(bins, t)
                .iter()
                .enumerate()
                .map(|(k, x)| ramp * (x.abs() + 1e-3) + if k == 17 { tone } else { 0.0 })
                .collect();
            inc.push_row(&row).unwrap();
            exact.push_row(&row).unwrap();
            inc.averaged_db_into(&mut a).unwrap();
            exact.averaged_db_into(&mut b).unwrap();
            for (x, y) in a.iter().zip(&b) {
                max_drift = max_drift.max((x - y).abs());
            }
        }
        // Far below any detection threshold (~10 dB) for the whole run.
        assert!(
            max_drift < 1e-6,
            "max drift {max_drift} dB over {ticks} ticks"
        );
        // A forced resync restores bitwise equality with the exact ring:
        // both then sum the same rows oldest→newest.
        inc.resync();
        inc.averaged_db_into(&mut a).unwrap();
        exact.averaged_db_into(&mut b).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn resync_every_one_is_always_exact() {
        let mut sliding =
            SlidingSpectrum::new(3, SlidingMode::Incremental { resync_every: 1 }).unwrap();
        let mut exact = SlidingSpectrum::new(3, SlidingMode::Exact).unwrap();
        for t in 0..10u64 {
            let row = noise(64, t);
            sliding.push_row(&row).unwrap();
            exact.push_row(&row).unwrap();
            let a = sliding.averaged_db().unwrap();
            let b = exact.averaged_db().unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn warm_fill_and_eviction_track_the_window() {
        let mut s = SlidingSpectrum::new(2, SlidingMode::Exact).unwrap();
        assert!(s.is_empty());
        assert!(s.averaged_db().is_err());
        s.push_row(&[1.0, 1.0]).unwrap();
        assert_eq!(s.len(), 1);
        s.push_row(&[3.0, 3.0]).unwrap();
        s.push_row(&[5.0, 5.0]).unwrap(); // evicts the 1.0 row
        assert_eq!(s.len(), 2);
        let db = s.averaged_db().unwrap();
        // Mean of 3 and 5 is 4 → 20·log10(4).
        assert!((db[0] - 20.0 * 4.0f64.log10()).abs() < 1e-12);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn validates_inputs() {
        assert!(SlidingSpectrum::new(0, SlidingMode::Exact).is_err());
        assert!(SlidingSpectrum::new(2, SlidingMode::Incremental { resync_every: 0 }).is_err());
        let mut s = SlidingSpectrum::new(2, SlidingMode::Exact).unwrap();
        assert!(s.push_row(&[]).is_err());
        s.push_row(&[1.0, 2.0]).unwrap();
        assert!(s.push_row(&[1.0, 2.0, 3.0]).is_err());
        assert_eq!(s.capacity(), 2);
        assert_eq!(s.mode(), SlidingMode::Exact);
    }

    #[test]
    fn steady_state_recycles_row_buffers() {
        let mut s = SlidingSpectrum::new(3, SlidingMode::Exact).unwrap();
        for t in 0..3u64 {
            s.push_row(&noise(32, t)).unwrap();
        }
        let mut ptrs: Vec<usize> = s.rows.iter().map(|r| r.as_ptr() as usize).collect();
        ptrs.sort_unstable();
        for t in 3..12u64 {
            s.push_row(&noise(32, t)).unwrap();
            let mut now: Vec<usize> = s.rows.iter().map(|r| r.as_ptr() as usize).collect();
            now.sort_unstable();
            assert_eq!(now, ptrs, "tick {t}: buffer set changed");
        }
    }
}
