//! Minimal complex-number arithmetic.
//!
//! A deliberately small `f64` complex type — only the operations the rest of
//! the workspace needs (FFT butterflies, mixing, magnitude extraction). Kept
//! local so the workspace has no numerical dependencies.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Example
///
/// ```
/// use psa_dsp::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates `r·e^{iθ}` from polar coordinates.
    ///
    /// # Example
    ///
    /// ```
    /// use psa_dsp::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Unit phasor `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (avoids the square root).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Reciprocal `1/z`.
    ///
    /// Returns non-finite components when `z` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// `true` if both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    // Division via the reciprocal is the intended formula, not a typo.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex::ZERO, Complex::new(0.0, 0.0));
        assert_eq!(Complex::ONE, Complex::new(1.0, 0.0));
        assert_eq!(Complex::I, Complex::new(0.0, 1.0));
        assert_eq!(Complex::from(2.5), Complex::new(2.5, 0.0));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.5, 3.25);
        assert_eq!(a + b - b, a);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(4.0, -5.0);
        // (2+3i)(4-5i) = 8 - 10i + 12i + 15 = 23 + 2i
        let p = a * b;
        assert!((p.re - 23.0).abs() < EPS);
        assert!((p.im - 2.0).abs() < EPS);
    }

    #[test]
    fn i_squared_is_minus_one() {
        let p = Complex::I * Complex::I;
        assert!((p.re + 1.0).abs() < EPS);
        assert!(p.im.abs() < EPS);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < 1e-10);
        assert!((q.im - a.im).abs() < 1e-10);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(3.0, 1.234);
        assert!((z.abs() - 3.0).abs() < EPS);
        assert!((z.arg() - 1.234).abs() < EPS);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..32 {
            let z = Complex::cis(k as f64 * 0.7);
            assert!((z.abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex::new(1.25, -4.5);
        assert_eq!(z.conj().conj(), z);
        let p = z * z.conj();
        assert!((p.im).abs() < EPS);
        assert!((p.re - z.norm_sqr()).abs() < EPS);
    }

    #[test]
    fn norm_sqr_consistent_with_abs() {
        let z = Complex::new(-2.0, 7.0);
        assert!((z.norm_sqr() - z.abs() * z.abs()).abs() < 1e-9);
    }

    #[test]
    fn recip_is_inverse() {
        let z = Complex::new(0.3, -0.7);
        let p = z * z.recip();
        assert!((p.re - 1.0).abs() < EPS);
        assert!(p.im.abs() < EPS);
    }

    #[test]
    fn sum_over_iterator() {
        let zs = [
            Complex::new(1.0, 1.0),
            Complex::new(2.0, -1.0),
            Complex::new(-3.0, 0.5),
        ];
        let s: Complex = zs.iter().copied().sum();
        assert!((s.re - 0.0).abs() < EPS);
        assert!((s.im - 0.5).abs() < EPS);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn neg_negates_both_parts() {
        let z = -Complex::new(1.0, -2.0);
        assert_eq!(z, Complex::new(-1.0, 2.0));
    }

    #[test]
    fn scalar_ops() {
        let z = Complex::new(1.0, -2.0) * 2.0;
        assert_eq!(z, Complex::new(2.0, -4.0));
        assert_eq!(z / 2.0, Complex::new(1.0, -2.0));
    }
}
