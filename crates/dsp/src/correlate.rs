//! Auto- and cross-correlation.
//!
//! The Trojan identification stage compares zero-span envelopes against
//! stored templates (normalized cross-correlation) and extracts envelope
//! periodicity from the autocorrelation, so all four Trojans can be told
//! apart without supervision (paper Fig 5).

use crate::error::DspError;
use crate::stats;

/// Biased autocorrelation for lags `0..max_lag`, normalized so lag 0
/// equals 1 (unless the signal has zero variance, in which case all lags
/// are 0).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal or
/// [`DspError::InvalidLength`] when `max_lag` exceeds the signal length.
pub fn autocorrelation(x: &[f64], max_lag: usize) -> Result<Vec<f64>, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if max_lag > x.len() {
        return Err(DspError::InvalidLength {
            what: "autocorrelation max lag",
            got: max_lag,
        });
    }
    let m = stats::mean(x);
    let centered: Vec<f64> = x.iter().map(|v| v - m).collect();
    let denom: f64 = centered.iter().map(|v| v * v).sum();
    // Guard against effectively-constant signals: the mean subtraction
    // leaves rounding residue, so compare against the signal's own scale.
    let scale = x.iter().map(|v| v * v).sum::<f64>().max(f64::MIN_POSITIVE);
    if denom <= scale * 1e-24 {
        return Ok(vec![0.0; max_lag]);
    }
    let mut out = Vec::with_capacity(max_lag);
    for lag in 0..max_lag {
        let mut acc = 0.0;
        for i in 0..x.len() - lag {
            acc += centered[i] * centered[i + lag];
        }
        out.push(acc / denom);
    }
    Ok(out)
}

/// Pearson correlation coefficient between two equal-length signals, in
/// `[-1, 1]`. Returns 0 if either input has zero variance.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for empty inputs or
/// [`DspError::InvalidLength`] on length mismatch.
///
/// # Example
///
/// ```
/// use psa_dsp::correlate::pearson;
/// let a = [1.0, 2.0, 3.0];
/// let b = [2.0, 4.0, 6.0];
/// assert!((pearson(&a, &b)? - 1.0).abs() < 1e-12);
/// # Ok::<(), psa_dsp::DspError>(())
/// ```
pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64, DspError> {
    if a.is_empty() || b.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if a.len() != b.len() {
        return Err(DspError::InvalidLength {
            what: "pearson operand length (must match)",
            got: b.len(),
        });
    }
    let ma = stats::mean(a);
    let mb = stats::mean(b);
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        num += (x - ma) * (y - mb);
        da += (x - ma) * (x - ma);
        db += (y - mb) * (y - mb);
    }
    if da == 0.0 || db == 0.0 {
        return Ok(0.0);
    }
    Ok(num / (da * db).sqrt())
}

/// Maximum normalized cross-correlation over all circular shifts of `b`
/// relative to `a` — a shift-invariant template match score in `[-1, 1]`.
///
/// # Errors
///
/// Same conditions as [`pearson`].
pub fn max_circular_correlation(a: &[f64], b: &[f64]) -> Result<f64, DspError> {
    if a.is_empty() || b.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if a.len() != b.len() {
        return Err(DspError::InvalidLength {
            what: "correlation operand length (must match)",
            got: b.len(),
        });
    }
    let n = a.len();
    let mut best = -1.0f64;
    let mut shifted = vec![0.0; n];
    for shift in 0..n {
        for i in 0..n {
            shifted[i] = b[(i + shift) % n];
        }
        best = best.max(pearson(a, &shifted)?);
    }
    Ok(best)
}

/// Estimates the dominant period of a signal (in samples) from the first
/// prominent autocorrelation peak after lag 0. Returns `None` when no
/// periodicity is found.
pub fn dominant_period(x: &[f64], max_lag: usize) -> Option<usize> {
    let ac = autocorrelation(x, max_lag.min(x.len())).ok()?;
    if ac.len() < 3 {
        return None;
    }
    // Skip the lag-0 main lobe: wait until the autocorrelation first drops
    // below 0.5, then find the highest subsequent local maximum.
    let start = ac.iter().position(|&v| v < 0.5)?;
    let mut best: Option<(usize, f64)> = None;
    for lag in start.max(1)..ac.len() - 1 {
        if ac[lag] > ac[lag - 1] && ac[lag] >= ac[lag + 1] && ac[lag] > 0.2 {
            match best {
                Some((_, v)) if v >= ac[lag] => {}
                _ => best = Some((lag, ac[lag])),
            }
        }
    }
    best.map(|(lag, _)| lag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn autocorrelation_lag0_is_one() {
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        let ac = autocorrelation(&x, 10).unwrap();
        assert!((ac[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_of_periodic_signal_peaks_at_period() {
        let period = 25;
        let x: Vec<f64> = (0..500)
            .map(|i| (2.0 * PI * i as f64 / period as f64).sin())
            .collect();
        let ac = autocorrelation(&x, 100).unwrap();
        assert!(ac[period] > 0.9);
        assert!(ac[period / 2] < -0.8);
    }

    #[test]
    fn autocorrelation_validates() {
        assert!(autocorrelation(&[], 5).is_err());
        assert!(autocorrelation(&[1.0, 2.0], 5).is_err());
    }

    #[test]
    fn autocorrelation_of_constant_is_zero() {
        let ac = autocorrelation(&[4.2; 50], 10).unwrap();
        assert!(ac.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_returns_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn pearson_validates() {
        assert!(pearson(&[], &[]).is_err());
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn circular_correlation_is_shift_invariant() {
        let n = 64;
        let a: Vec<f64> = (0..n).map(|i| (2.0 * PI * i as f64 / 16.0).sin()).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            b[i] = a[(i + 7) % n];
        }
        let score = max_circular_correlation(&a, &b).unwrap();
        assert!(score > 0.999, "score {score}");
    }

    #[test]
    fn circular_correlation_distinguishes_different_shapes() {
        let n = 128;
        // Sine vs pseudo-random telegraph: low best correlation.
        let a: Vec<f64> = (0..n).map(|i| (2.0 * PI * i as f64 / 16.0).sin()).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| {
                if (i * 2654435761usize) % 97 < 48 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        let cross = max_circular_correlation(&a, &b).unwrap();
        assert!(cross < 0.6, "cross {cross}");
    }

    #[test]
    fn dominant_period_of_sine() {
        let period = 40;
        let x: Vec<f64> = (0..800)
            .map(|i| (2.0 * PI * i as f64 / period as f64).sin())
            .collect();
        let p = dominant_period(&x, 200).unwrap();
        assert!((p as i64 - period as i64).abs() <= 1, "period {p}");
    }

    #[test]
    fn dominant_period_absent_for_constant() {
        assert_eq!(dominant_period(&[1.0; 100], 50), None);
    }
}
