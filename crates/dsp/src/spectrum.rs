//! Spectral estimation: amplitude spectra, periodograms, Welch averaging,
//! STFT, and decibel conversions.
//!
//! These routines are the software model of the paper's spectrum-analyzer
//! measurements: Fig 3 (PSA vs external probe magnitude spectra) and
//! Fig 4 (per-sensor spectra with Trojans active/inactive) are regenerated
//! through [`amplitude_spectrum_db`] and trace averaging.

use crate::complex::Complex;
use crate::error::DspError;
use crate::fft;
use crate::rfft;
use crate::window::Window;

/// Floor used when converting near-zero powers to dB so that silent traces
/// produce a deep-but-finite noise floor instead of `-inf`.
pub const DB_FLOOR: f64 = -300.0;

/// Converts an amplitude ratio to decibels: `20·log10(x)`, clamped at
/// [`DB_FLOOR`].
#[inline]
pub fn amplitude_db(x: f64) -> f64 {
    if x <= 0.0 {
        DB_FLOOR
    } else {
        (20.0 * x.log10()).max(DB_FLOOR)
    }
}

/// Converts a power ratio to decibels: `10·log10(x)`, clamped at
/// [`DB_FLOOR`].
#[inline]
pub fn power_db(x: f64) -> f64 {
    if x <= 0.0 {
        DB_FLOOR
    } else {
        (10.0 * x.log10()).max(DB_FLOOR)
    }
}

/// Inverse of [`amplitude_db`].
#[inline]
pub fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Inverse of [`power_db`].
#[inline]
pub fn db_to_power(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// One-sided amplitude spectrum of a real signal.
///
/// Returns `n/2 + 1` values scaled so a full-scale sine of amplitude `A`
/// reads `A` at its bin (single-sided convention, window coherent gain
/// compensated). The final signal length is used as the FFT length (any
/// length is accepted; non powers of two go through Bluestein).
///
/// # Panics
///
/// Panics if `signal` is empty; use [`try_amplitude_spectrum`] for a
/// fallible variant.
pub fn amplitude_spectrum(signal: &[f64], window: Window) -> Vec<f64> {
    try_amplitude_spectrum(signal, window).expect("signal must be non-empty")
}

/// Fallible variant of [`amplitude_spectrum`].
///
/// Power-of-two lengths go through the packed real-input FFT
/// ([`crate::rfft`], about half the butterfly work of the complex
/// transform); other lengths fall back to the Bluestein path. The
/// batched [`crate::batch::SpectrumScratch`] runs the identical
/// transform, so batched and one-shot spectra stay bit-identical.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when `signal` is empty.
pub fn try_amplitude_spectrum(signal: &[f64], window: Window) -> Result<Vec<f64>, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = signal.len();
    let windowed = window.applied(signal);
    let spec = rfft::rfft_one_sided(&windowed)?;
    let cg = window.coherent_gain(n);
    let scale = 2.0 / (n as f64 * cg);
    let half = fft::one_sided_len(n);
    let mut out = Vec::with_capacity(half);
    for (k, z) in spec.iter().take(half).enumerate() {
        // DC and Nyquist bins are not doubled in the one-sided convention.
        let s = if k == 0 || (n % 2 == 0 && k == half - 1) {
            scale / 2.0
        } else {
            scale
        };
        out.push(z.abs() * s);
    }
    Ok(out)
}

/// One-sided amplitude spectrum in dB (re 1.0).
pub fn amplitude_spectrum_db(signal: &[f64], window: Window) -> Vec<f64> {
    amplitude_spectrum(signal, window)
        .into_iter()
        .map(amplitude_db)
        .collect()
}

/// One-sided power spectral density estimate (periodogram), in units of
/// `V²/Hz` for a voltage input.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal and
/// [`DspError::NonPositive`] for a non-positive sample rate.
pub fn periodogram(signal: &[f64], fs_hz: f64, window: Window) -> Result<Vec<f64>, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if fs_hz <= 0.0 {
        return Err(DspError::NonPositive {
            what: "sample rate",
        });
    }
    let n = signal.len();
    let windowed = window.applied(signal);
    let spec = rfft::rfft_one_sided(&windowed)?;
    let ng = window.noise_gain(n);
    let scale = 1.0 / (fs_hz * n as f64 * ng);
    let half = fft::one_sided_len(n);
    let mut out = Vec::with_capacity(half);
    for (k, z) in spec.iter().take(half).enumerate() {
        let s = if k == 0 || (n % 2 == 0 && k == half - 1) {
            scale
        } else {
            2.0 * scale
        };
        out.push(z.norm_sqr() * s);
    }
    Ok(out)
}

/// Welch's method: averaged periodogram over overlapping segments.
///
/// `segment_len` is the FFT length per segment; `overlap` is the fraction
/// of each segment shared with the next, in `[0, 1)`.
///
/// # Errors
///
/// Returns an error for empty input, non-positive sample rate, a
/// `segment_len` of zero or longer than the signal, or an overlap outside
/// `[0, 1)`.
pub fn welch_psd(
    signal: &[f64],
    fs_hz: f64,
    segment_len: usize,
    overlap: f64,
    window: Window,
) -> Result<Vec<f64>, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if fs_hz <= 0.0 {
        return Err(DspError::NonPositive {
            what: "sample rate",
        });
    }
    if segment_len == 0 || segment_len > signal.len() {
        return Err(DspError::InvalidLength {
            what: "welch segment length",
            got: segment_len,
        });
    }
    if !(0.0..1.0).contains(&overlap) {
        return Err(DspError::NonPositive {
            what: "welch overlap (must be in [0,1))",
        });
    }
    let hop = ((segment_len as f64) * (1.0 - overlap)).max(1.0) as usize;
    let mut acc = vec![0.0; fft::one_sided_len(segment_len)];
    let mut count = 0usize;
    let mut start = 0usize;
    while start + segment_len <= signal.len() {
        let p = periodogram(&signal[start..start + segment_len], fs_hz, window)?;
        for (a, v) in acc.iter_mut().zip(p) {
            *a += v;
        }
        count += 1;
        start += hop;
    }
    for a in &mut acc {
        *a /= count as f64;
    }
    Ok(acc)
}

/// Averages several magnitude traces point-wise, as the paper does ("we
/// averaged five collected traces to derive the spectrum").
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `traces` is empty, or
/// [`DspError::InvalidLength`] if the traces have differing lengths.
pub fn average_traces(traces: &[Vec<f64>]) -> Result<Vec<f64>, DspError> {
    let first = traces.first().ok_or(DspError::EmptyInput)?;
    let n = first.len();
    for t in traces {
        if t.len() != n {
            return Err(DspError::InvalidLength {
                what: "trace length (all traces must match)",
                got: t.len(),
            });
        }
    }
    let mut out = vec![0.0; n];
    for t in traces {
        for (o, v) in out.iter_mut().zip(t) {
            *o += v;
        }
    }
    let k = traces.len() as f64;
    for o in &mut out {
        *o /= k;
    }
    Ok(out)
}

/// Short-time Fourier transform magnitude (spectrogram columns).
///
/// Returns one amplitude-spectrum vector per hop. Used by the run-time
/// monitor to watch spectra evolve as Trojans activate.
///
/// # Errors
///
/// Propagates the same errors as [`try_amplitude_spectrum`]; additionally
/// rejects `frame_len == 0` or `hop == 0`.
pub fn stft_magnitude(
    signal: &[f64],
    frame_len: usize,
    hop: usize,
    window: Window,
) -> Result<Vec<Vec<f64>>, DspError> {
    if frame_len == 0 {
        return Err(DspError::InvalidLength {
            what: "stft frame length",
            got: 0,
        });
    }
    if hop == 0 {
        return Err(DspError::InvalidLength {
            what: "stft hop",
            got: 0,
        });
    }
    let mut cols = Vec::new();
    let mut start = 0;
    while start + frame_len <= signal.len() {
        cols.push(try_amplitude_spectrum(
            &signal[start..start + frame_len],
            window,
        )?);
        start += hop;
    }
    Ok(cols)
}

/// Resamples a spectrum (or any series) to exactly `target_len` points by
/// linear interpolation; used to present the paper's "2000 sample points"
/// traces regardless of internal FFT size.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty series or
/// [`DspError::InvalidLength`] when `target_len == 0`.
pub fn resample_linear(series: &[f64], target_len: usize) -> Result<Vec<f64>, DspError> {
    if series.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if target_len == 0 {
        return Err(DspError::InvalidLength {
            what: "resample target length",
            got: 0,
        });
    }
    if series.len() == 1 {
        return Ok(vec![series[0]; target_len]);
    }
    if target_len == 1 {
        return Ok(vec![series[0]]);
    }
    let n = series.len();
    let mut out = Vec::with_capacity(target_len);
    for i in 0..target_len {
        let pos = i as f64 * (n - 1) as f64 / (target_len - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = (lo + 1).min(n - 1);
        let frac = pos - lo as f64;
        out.push(series[lo] * (1.0 - frac) + series[hi] * frac);
    }
    Ok(out)
}

/// Complex spectrum of a complex signal (convenience wrapper for chained
/// DSP like the zero-span path).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal.
pub fn complex_spectrum(signal: &[Complex]) -> Result<Vec<Complex>, DspError> {
    fft::fft_any(signal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(n: usize, fs: f64, f0: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * PI * f0 * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn db_conversions_roundtrip() {
        for &x in &[1e-6, 0.5, 1.0, 3.7, 1e4] {
            assert!((db_to_amplitude(amplitude_db(x)) - x).abs() / x < 1e-12);
            assert!((db_to_power(power_db(x)) - x).abs() / x < 1e-12);
        }
        assert_eq!(amplitude_db(0.0), DB_FLOOR);
        assert_eq!(power_db(-1.0), DB_FLOOR);
    }

    #[test]
    fn amplitude_spectrum_reads_tone_amplitude() {
        let fs = 1000.0;
        let n = 1024;
        let f0 = fs * 100.0 / n as f64; // exactly bin 100
        for window in [Window::Rectangular, Window::Hann, Window::FlatTop] {
            let x = tone(n, fs, f0, 0.75);
            let spec = amplitude_spectrum(&x, window);
            let peak = spec.iter().cloned().fold(0.0, f64::max);
            assert!(
                (peak - 0.75).abs() < 0.01,
                "{window}: peak {peak} expected 0.75"
            );
        }
    }

    #[test]
    fn amplitude_spectrum_dc_reads_mean() {
        let x = vec![0.42; 512];
        let spec = amplitude_spectrum(&x, Window::Rectangular);
        assert!((spec[0] - 0.42).abs() < 1e-12);
    }

    #[test]
    fn spectrum_length_is_one_sided() {
        let x = vec![0.0; 256];
        assert_eq!(amplitude_spectrum(&x, Window::Hann).len(), 129);
        let x = vec![0.0; 255];
        assert_eq!(amplitude_spectrum(&x, Window::Hann).len(), 128);
    }

    #[test]
    fn periodogram_integrates_to_variance() {
        // White-ish deterministic signal: total integrated PSD equals mean
        // square (Parseval).
        let x: Vec<f64> = (0..4096)
            .map(|i| ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5)
            .collect();
        let fs = 1.0e6;
        let psd = periodogram(&x, fs, Window::Rectangular).unwrap();
        let df = fs / x.len() as f64;
        let integrated: f64 = psd.iter().sum::<f64>() * df;
        let mean_sq: f64 = x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64;
        assert!((integrated - mean_sq).abs() / mean_sq < 1e-9);
    }

    #[test]
    fn welch_reduces_variance_of_estimate() {
        // Deterministic pseudo-noise; Welch with many segments should be
        // much smoother (lower variance across bins) than one periodogram.
        let x: Vec<f64> = (0..8192)
            .map(|i| ((i as f64 * 78.233).sin() * 12543.97).fract() - 0.5)
            .collect();
        let fs = 1.0;
        let single = periodogram(&x, fs, Window::Hann).unwrap();
        let welch = welch_psd(&x, fs, 512, 0.5, Window::Hann).unwrap();
        let var = |v: &[f64]| {
            let interior = &v[1..v.len() - 1];
            let m = interior.iter().sum::<f64>() / interior.len() as f64;
            interior.iter().map(|x| (x - m) * (x - m)).sum::<f64>()
                / interior.len() as f64
                / (m * m)
        };
        assert!(var(&welch) < var(&single) / 4.0);
    }

    #[test]
    fn welch_validates_arguments() {
        let x = vec![0.0; 64];
        assert!(welch_psd(&x, 1.0, 0, 0.5, Window::Hann).is_err());
        assert!(welch_psd(&x, 1.0, 128, 0.5, Window::Hann).is_err());
        assert!(welch_psd(&x, 1.0, 32, 1.0, Window::Hann).is_err());
        assert!(welch_psd(&x, 0.0, 32, 0.5, Window::Hann).is_err());
        assert!(welch_psd(&[], 1.0, 32, 0.5, Window::Hann).is_err());
    }

    #[test]
    fn average_traces_averages() {
        let t1 = vec![1.0, 2.0, 3.0];
        let t2 = vec![3.0, 2.0, 1.0];
        let avg = average_traces(&[t1, t2]).unwrap();
        assert_eq!(avg, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn average_traces_rejects_mismatched() {
        assert!(average_traces(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(average_traces(&[]).is_err());
    }

    #[test]
    fn averaging_lowers_noise_but_keeps_signal() {
        // Tone + deterministic pseudo-noise: averaging 16 traces should
        // leave the tone bin alone and shrink the off-bin noise.
        let fs = 1000.0;
        let n = 512;
        let f0 = fs * 60.0 / n as f64;
        let mut traces = Vec::new();
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut lcg = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for _ in 0..16 {
            let x: Vec<f64> = (0..n)
                .map(|i| (2.0 * PI * f0 * i as f64 / fs).sin() + 0.5 * lcg())
                .collect();
            traces.push(amplitude_spectrum(&x, Window::Hann));
        }
        let avg = average_traces(&traces).unwrap();
        let peak_bin = 60;
        assert!((avg[peak_bin] - 1.0).abs() < 0.1);
        let off_bin_max = avg
            .iter()
            .enumerate()
            .filter(|(k, _)| (*k as i64 - peak_bin as i64).abs() > 4)
            .map(|(_, v)| *v)
            .fold(0.0, f64::max);
        assert!(off_bin_max < 0.2);
    }

    #[test]
    fn stft_column_count() {
        let x = vec![0.0; 1000];
        let cols = stft_magnitude(&x, 256, 128, Window::Hann).unwrap();
        assert_eq!(cols.len(), (1000 - 256) / 128 + 1);
        assert_eq!(cols[0].len(), 129);
        assert!(stft_magnitude(&x, 0, 1, Window::Hann).is_err());
        assert!(stft_magnitude(&x, 16, 0, Window::Hann).is_err());
    }

    #[test]
    fn resample_preserves_endpoints_and_monotone_ramp() {
        let ramp: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let out = resample_linear(&ramp, 2000).unwrap();
        assert_eq!(out.len(), 2000);
        assert!((out[0] - 0.0).abs() < 1e-12);
        assert!((out[1999] - 99.0).abs() < 1e-12);
        assert!(out.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn resample_degenerate_cases() {
        assert!(resample_linear(&[], 10).is_err());
        assert!(resample_linear(&[1.0], 0).is_err());
        assert_eq!(resample_linear(&[5.0], 3).unwrap(), vec![5.0, 5.0, 5.0]);
        assert_eq!(resample_linear(&[1.0, 2.0], 1).unwrap(), vec![1.0]);
    }
}
