//! Minimal deterministic PRNG (xoshiro256++ seeded via SplitMix64).
//!
//! Stands in for the `rand` crate so the workspace stays dependency-free;
//! every consumer seeds explicitly, keeping whole-pipeline runs
//! reproducible bit-for-bit.

/// One SplitMix64 step: add the golden-gamma increment, then the
/// finalizer. The canonical deterministic 64-bit hash of the
/// workspace — [`SmallRng`] seeds through it, and seed salts derived
/// elsewhere (e.g. the atlas's per-placement seeds) call it so every
/// crate agrees on the constants.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, seedable PRNG (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            let out = splitmix64(sm);
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            out
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample in the open interval `(0, 1)`.
    pub fn gen_open01(&mut self) -> f64 {
        loop {
            let x = self.gen_f64();
            if x > 0.0 {
                return x;
            }
        }
    }

    /// A uniform index in `0..n`. Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index needs a non-empty range");
        // Plain modulo is fine here: n is tiny compared to 2^64, so the
        // modulo bias is far below the f64 noise floors in this workspace.
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        // Pin the hash to the published SplitMix64 sequence (Vigna's
        // splitmix64.c, state 0 → first output) so refactors cannot
        // silently re-seed every deterministic sweep in the workspace.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn index_in_range_and_covers() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn roughly_uniform_mean() {
        let mut r = SmallRng::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
