//! Fast Fourier transforms.
//!
//! An iterative radix-2 Cooley–Tukey FFT for power-of-two lengths, extended
//! to arbitrary lengths with Bluestein's chirp-z algorithm. Also provides
//! real-input conveniences used by the spectrum module.
//!
//! Conventions: the forward transform is `X[k] = Σ x[n]·e^{-2πi kn/N}`
//! (no normalization); the inverse divides by `N`, so
//! `ifft(fft(x)) == x`.

use crate::complex::Complex;
use crate::error::DspError;
use std::f64::consts::PI;

/// Returns `true` if `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Next power of two `>= n` (with `next_pow2(0) == 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place forward FFT for power-of-two lengths.
///
/// # Errors
///
/// Returns [`DspError::InvalidLength`] if `data.len()` is not a power of two
/// or is zero.
///
/// # Example
///
/// ```
/// use psa_dsp::{fft, Complex};
/// let mut x = vec![Complex::ONE; 4];
/// fft::fft(&mut x)?;
/// assert!((x[0].re - 4.0).abs() < 1e-12); // DC bin collects everything
/// assert!(x[1].abs() < 1e-12);
/// # Ok::<(), psa_dsp::DspError>(())
/// ```
pub fn fft(data: &mut [Complex]) -> Result<(), DspError> {
    transform_pow2(data, false)
}

/// In-place inverse FFT for power-of-two lengths (normalized by `1/N`).
///
/// # Errors
///
/// Returns [`DspError::InvalidLength`] if `data.len()` is not a power of two
/// or is zero.
pub fn ifft(data: &mut [Complex]) -> Result<(), DspError> {
    transform_pow2(data, true)?;
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = *z / n;
    }
    Ok(())
}

fn transform_pow2(data: &mut [Complex], inverse: bool) -> Result<(), DspError> {
    let n = data.len();
    if !is_power_of_two(n) {
        return Err(DspError::InvalidLength {
            what: "fft size (must be a power of two)",
            got: n,
        });
    }
    if n == 1 {
        return Ok(());
    }

    // Bit-reversal permutation.
    let levels = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - levels)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }

    // Iterative butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut size = 2;
    while size <= n {
        let half = size / 2;
        let step = sign * 2.0 * PI / size as f64;
        // Precompute the twiddles for this stage once.
        let twiddles: Vec<Complex> = (0..half).map(|k| Complex::cis(step * k as f64)).collect();
        for start in (0..n).step_by(size) {
            for k in 0..half {
                let even = data[start + k];
                let odd = data[start + k + half] * twiddles[k];
                data[start + k] = even + odd;
                data[start + k + half] = even - odd;
            }
        }
        size *= 2;
    }
    Ok(())
}

/// Forward FFT of arbitrary length, out of place.
///
/// Power-of-two lengths use the radix-2 kernel directly; other lengths use
/// Bluestein's chirp-z transform (exact to floating-point rounding).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when `input` is empty.
pub fn fft_any(input: &[Complex]) -> Result<Vec<Complex>, DspError> {
    if input.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = input.len();
    if is_power_of_two(n) {
        let mut buf = input.to_vec();
        fft(&mut buf)?;
        return Ok(buf);
    }
    bluestein(input, false)
}

/// Inverse FFT of arbitrary length, out of place (normalized by `1/N`).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when `input` is empty.
pub fn ifft_any(input: &[Complex]) -> Result<Vec<Complex>, DspError> {
    if input.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = input.len();
    if is_power_of_two(n) {
        let mut buf = input.to_vec();
        ifft(&mut buf)?;
        return Ok(buf);
    }
    let mut out = bluestein(input, true)?;
    let scale = 1.0 / n as f64;
    for z in &mut out {
        *z = *z * scale;
    }
    Ok(out)
}

/// Bluestein chirp-z transform: expresses an N-point DFT as a convolution,
/// evaluated with a power-of-two FFT of length >= 2N-1.
fn bluestein(input: &[Complex], inverse: bool) -> Result<Vec<Complex>, DspError> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Forward chirp is e^{-iπk²/n} (from nk = (n²+k²-(k-n)²)/2); inverse
    // conjugates it. Use k² mod 2n to keep angles small and exact.
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            let k2 = (k as u128 * k as u128) % (2 * n as u128);
            Complex::cis(sign * PI * k2 as f64 / n as f64)
        })
        .collect();

    let m = next_pow2(2 * n - 1);
    let mut a = vec![Complex::ZERO; m];
    let mut b = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
        b[k] = chirp[k].conj();
    }
    for k in 1..n {
        b[m - k] = chirp[k].conj();
    }
    fft(&mut a)?;
    fft(&mut b)?;
    for k in 0..m {
        a[k] *= b[k];
    }
    ifft(&mut a)?;
    Ok((0..n).map(|k| a[k] * chirp[k]).collect())
}

/// FFT of a real signal; returns the full complex spectrum of length
/// `input.len()`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when `input` is empty.
pub fn rfft(input: &[f64]) -> Result<Vec<Complex>, DspError> {
    let buf: Vec<Complex> = input.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft_any(&buf)
}

/// One-sided spectrum length for a real FFT of length `n`: `n/2 + 1`.
#[inline]
pub fn one_sided_len(n: usize) -> usize {
    n / 2 + 1
}

/// Frequency in hertz of bin `k` for an FFT of length `n` at sample rate
/// `fs_hz`.
#[inline]
pub fn bin_freq(k: usize, n: usize, fs_hz: f64) -> f64 {
    k as f64 * fs_hz / n as f64
}

/// Closest FFT bin for frequency `freq_hz` with FFT length `n` at sample
/// rate `fs_hz`.
#[inline]
pub fn freq_bin(freq_hz: f64, n: usize, fs_hz: f64) -> usize {
    ((freq_hz * n as f64 / fs_hz).round() as usize).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        fft(&mut x).unwrap();
        for z in x {
            assert_close(z, Complex::ONE, 1e-12);
        }
    }

    #[test]
    fn fft_of_dc_is_impulse() {
        let mut x = vec![Complex::ONE; 16];
        fft(&mut x).unwrap();
        assert_close(x[0], Complex::new(16.0, 0.0), 1e-12);
        for z in &x[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_matches_dft_small() {
        // Compare against a direct O(n²) DFT on random-ish data.
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
            .collect();
        let mut fast = x.clone();
        fft(&mut fast).unwrap();
        for (k, &fk) in fast.iter().enumerate() {
            let mut acc = Complex::ZERO;
            for (n, &xn) in x.iter().enumerate() {
                acc += xn * Complex::cis(-2.0 * PI * (k * n) as f64 / x.len() as f64);
            }
            assert_close(fk, acc, 1e-9);
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let orig: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let mut x = orig.clone();
        fft(&mut x).unwrap();
        ifft(&mut x).unwrap();
        for (a, b) in x.iter().zip(orig.iter()) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let mut x = vec![Complex::ZERO; 12];
        assert!(matches!(fft(&mut x), Err(DspError::InvalidLength { .. })));
    }

    #[test]
    fn fft_any_matches_dft_for_odd_length() {
        let n = 15;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 1.7).cos(), (i as f64 * 0.3).sin()))
            .collect();
        let fast = fft_any(&x).unwrap();
        for (k, &fk) in fast.iter().enumerate() {
            let mut acc = Complex::ZERO;
            for (m, &xm) in x.iter().enumerate() {
                acc += xm * Complex::cis(-2.0 * PI * (k * m) as f64 / n as f64);
            }
            assert_close(fk, acc, 1e-9);
        }
    }

    #[test]
    fn ifft_any_inverts_fft_any_odd_length() {
        let n = 21;
        let orig: Vec<Complex> = (0..n)
            .map(|i| Complex::new(i as f64, (n - i) as f64 * 0.1))
            .collect();
        let spec = fft_any(&orig).unwrap();
        let back = ifft_any(&spec).unwrap();
        for (a, b) in back.iter().zip(orig.iter()) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn rfft_tone_lands_in_expected_bin() {
        let n = 256;
        let fs = 1000.0;
        let f0 = 125.0; // exactly bin 32
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * f0 * i as f64 / fs).cos())
            .collect();
        let spec = rfft(&x).unwrap();
        let bin = freq_bin(f0, n, fs);
        assert_eq!(bin, 32);
        assert!((spec[bin].abs() - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn rfft_conjugate_symmetry() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin() + 0.3).collect();
        let spec = rfft(&x).unwrap();
        let n = spec.len();
        for k in 1..n / 2 {
            assert_close(spec[n - k], spec[k].conj(), 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let x: Vec<f64> = (0..128)
            .map(|i| (i as f64 * 0.11).sin() * (i as f64 * 0.013).cos())
            .collect();
        let spec = rfft(&x).unwrap();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }

    #[test]
    fn linearity_of_fft() {
        let a: Vec<Complex> = (0..32).map(|i| Complex::new(i as f64, 0.0)).collect();
        let b: Vec<Complex> = (0..32).map(|i| Complex::new(0.0, (i * i) as f64)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = fft_any(&a).unwrap();
        let fb = fft_any(&b).unwrap();
        let fsum = fft_any(&sum).unwrap();
        for k in 0..32 {
            assert_close(fsum[k], fa[k] + fb[k], 1e-8);
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(fft_any(&[]), Err(DspError::EmptyInput)));
        assert!(matches!(ifft_any(&[]), Err(DspError::EmptyInput)));
        assert!(matches!(rfft(&[]), Err(DspError::EmptyInput)));
    }

    #[test]
    fn helpers_behave() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(12));
        assert_eq!(next_pow2(5), 8);
        assert_eq!(one_sided_len(4096), 2049);
        assert!((bin_freq(32, 256, 1000.0) - 125.0).abs() < 1e-12);
    }

    #[test]
    fn shift_theorem() {
        // x[n-1] circular shift multiplies spectrum by e^{-2πik/N}.
        let n = 16;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.77).sin(), 0.0))
            .collect();
        let mut shifted = vec![Complex::ZERO; n];
        for i in 0..n {
            shifted[(i + 1) % n] = x[i];
        }
        let fx = fft_any(&x).unwrap();
        let fs = fft_any(&shifted).unwrap();
        for k in 0..n {
            let expected = fx[k] * Complex::cis(-2.0 * PI * k as f64 / n as f64);
            assert_close(fs[k], expected, 1e-9);
        }
    }
}
