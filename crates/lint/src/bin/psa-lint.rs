//! `psa-lint` CLI: lint the workspace for determinism & hot-path
//! contract violations.
//!
//! ```text
//! psa-lint [--json] [--rules] [ROOT]
//! ```
//!
//! Lints every `.rs` file under `ROOT` (default: the current
//! directory), printing `file:line: [rule] message` diagnostics, or a
//! JSON array with `--json`. Exits 0 when clean, 1 on unsuppressed
//! findings, 2 on usage or I/O errors.

use psa_lint::engine::findings_to_json;
use psa_lint::rules::RuleId;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--rules" => {
                for rule in RuleId::ALL {
                    println!("{:<24} {}", rule.name(), rule.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: psa-lint [--json] [--rules] [ROOT]");
                println!("  lints every .rs file under ROOT (default .) for determinism");
                println!("  & hot-path contract violations; exit 1 on findings.");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag `{flag}` (try --help)");
                return ExitCode::from(2);
            }
            path => {
                if root.is_some() {
                    eprintln!("error: more than one ROOT argument (try --help)");
                    return ExitCode::from(2);
                }
                root = Some(PathBuf::from(path));
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    let findings = match psa_lint::lint_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", findings_to_json(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render());
        }
        if findings.is_empty() {
            eprintln!("psa-lint: clean");
        } else {
            eprintln!("psa-lint: {} unsuppressed finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
