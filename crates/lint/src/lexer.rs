//! A small, lossless-enough Rust lexer for contract linting.
//!
//! The lexer's single job is to let the rule engine match on *code*
//! tokens without being fooled by comments, string literals, raw
//! strings, or char-vs-lifetime ambiguity. It is not a full Rust
//! front end: it produces a flat token stream (identifiers, literals,
//! punctuation) plus a side channel of comments, which is where
//! `psa-lint: allow(...)` suppression directives live.
//!
//! Guarantees the rules rely on:
//!
//! * Text inside `"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"` and char
//!   literals never produces identifier tokens — `"HashMap"` in a
//!   string is invisible to the rules.
//! * Text inside `// …` and (nested) `/* … */` comments never produces
//!   tokens either; comment text is captured verbatim per line so the
//!   suppression parser can scan it.
//! * Lifetimes (`'a`) are distinguished from char literals (`'a'`) so
//!   an apostrophe never desynchronises the stream.

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `unwrap`, `mod`, …).
    Ident,
    /// A lifetime (`'a`) — kept distinct so rules never match it.
    Lifetime,
    /// Any string, raw-string, byte-string, or char literal.
    Literal,
    /// A numeric literal.
    Number,
    /// A single punctuation character (`.`, `:`, `!`, `(`, `{`, …).
    Punct(char),
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token kind; punctuation carries its character.
    pub kind: TokKind,
    /// Source text for identifiers (empty for other kinds — rules only
    /// ever match identifier spellings).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment captured during lexing (the suppression side channel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
}

/// Lexer output: the code token stream plus the comment side channel.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source` into tokens and comments. Never fails: unterminated
/// constructs simply consume the rest of the file (the compiler is the
/// authority on well-formedness; the linter only needs to stay in sync
/// on code that compiles).
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.char_indices().peekable(),
        src: source,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn bump(&mut self) -> Option<(usize, char)> {
        let next = self.chars.next();
        if let Some((_, '\n')) = next {
            self.line += 1;
        }
        next
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    fn peek2(&mut self) -> Option<char> {
        let mut clone = self.chars.clone();
        clone.next();
        clone.next().map(|(_, c)| c)
    }

    fn push(&mut self, kind: TokKind, text: &str, line: u32) {
        self.out.tokens.push(Tok {
            kind,
            text: text.to_string(),
            line,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some((i, c)) = self.bump() {
            let line = if c == '\n' { self.line - 1 } else { self.line };
            match c {
                c if c.is_whitespace() => {}
                '/' if self.peek() == Some('/') => self.line_comment(i, line),
                '/' if self.peek() == Some('*') => self.block_comment(i, line),
                '"' => self.string_literal(line),
                '\'' => self.quote(line),
                c if c.is_ascii_digit() => self.number(c),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_literal(i, c, line),
                c => self.push(TokKind::Punct(c), "", line),
            }
        }
        self.out
    }

    /// `// …` to end of line; captures the text after the slashes.
    fn line_comment(&mut self, start: usize, line: u32) {
        let mut end = self.src.len();
        while let Some(c) = self.peek() {
            if c == '\n' {
                end = self.chars.peek().map(|&(j, _)| j).unwrap_or(end);
                break;
            }
            if let Some((j, _)) = self.bump() {
                end = j + 1;
            }
        }
        let text = self.src[start..end].trim_start_matches('/').trim();
        self.out.comments.push(Comment {
            line,
            text: text.to_string(),
        });
    }

    /// `/* … */` with nesting; captured as one comment at its start line.
    fn block_comment(&mut self, start: usize, line: u32) {
        self.bump(); // consume '*'
        let mut depth = 1usize;
        let mut end = self.src.len();
        while depth > 0 {
            match self.bump() {
                Some((j, '*')) if self.peek() == Some('/') => {
                    self.bump();
                    depth -= 1;
                    end = j;
                }
                Some((_, '/')) if self.peek() == Some('*') => {
                    self.bump();
                    depth += 1;
                }
                Some(_) => {}
                None => break,
            }
        }
        let inner = self.src[start + 2..end.max(start + 2)].trim();
        self.out.comments.push(Comment {
            line,
            text: inner.to_string(),
        });
    }

    /// `"…"` with escapes; the opening quote is already consumed.
    fn string_literal(&mut self, line: u32) {
        while let Some((_, c)) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Literal, "", line);
    }

    /// Raw string `r##"…"##` with `hashes` leading `#`s; the prefix and
    /// opening quote are already consumed.
    fn raw_string(&mut self, hashes: usize, line: u32) {
        'outer: while let Some((_, c)) = self.bump() {
            if c == '"' {
                // A closing quote must be followed by exactly `hashes` #s.
                for _ in 0..hashes {
                    if self.peek() == Some('#') {
                        self.bump();
                    } else {
                        continue 'outer;
                    }
                }
                break;
            }
        }
        self.push(TokKind::Literal, "", line);
    }

    /// `'` — either a char literal or a lifetime.
    fn quote(&mut self, line: u32) {
        match (self.peek(), self.peek2()) {
            // '\n' style escape: always a char literal.
            (Some('\\'), _) => {
                self.bump();
                self.bump(); // the escaped char
                while let Some(c) = self.peek() {
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Literal, "", line);
            }
            // 'x' — a one-char literal closed by a quote.
            (Some(c), Some('\'')) if c != '\'' => {
                self.bump();
                self.bump();
                self.push(TokKind::Literal, "", line);
            }
            // 'ident — a lifetime (no closing quote).
            (Some(c), _) if c == '_' || c.is_alphabetic() => {
                while let Some(c) = self.peek() {
                    if c == '_' || c.is_alphanumeric() {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, "", line);
            }
            _ => self.push(TokKind::Punct('\''), "", line),
        }
    }

    /// Numeric literal: digits, hex/suffix chars, `.`-fraction and
    /// signed exponents. Loose by design — rules never match numbers,
    /// the lexer only has to not desynchronise on them.
    fn number(&mut self, _first: char) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_alphanumeric() || c == '_' => {
                    let was_exp = matches!(c, 'e' | 'E');
                    self.bump();
                    if was_exp {
                        if let Some(s) = self.peek() {
                            if (s == '+' || s == '-')
                                && self.peek2().is_some_and(|d| d.is_ascii_digit())
                            {
                                self.bump();
                            }
                        }
                    }
                }
                Some('.') if self.peek2().is_some_and(|d| d.is_ascii_digit()) => {
                    self.bump();
                }
                _ => break,
            }
        }
        self.push(TokKind::Number, "", self.line);
    }

    /// Identifier, or a raw/byte/C string behind an `r`/`b`/`br`/`c`/`cr`
    /// prefix, or a raw identifier `r#ident`.
    fn ident_or_prefixed_literal(&mut self, start: usize, _first: char, line: u32) {
        let mut end = start + 1;
        while let Some(c) = self.peek() {
            if c == '_' || c.is_alphanumeric() {
                if let Some((j, _)) = self.bump() {
                    end = j + 1;
                }
            } else {
                break;
            }
        }
        let text = &self.src[start..end];
        let string_prefix = matches!(text, "r" | "b" | "br" | "c" | "cr");
        match (string_prefix, self.peek()) {
            (true, Some('"')) => {
                self.bump();
                if text.starts_with('r') || text.ends_with('r') {
                    self.raw_string(0, line);
                } else {
                    self.string_literal(line);
                }
            }
            (true, Some('#')) => {
                // Count hashes; only a quote after them makes a raw string
                // (`r#ident` is a raw identifier instead).
                let probe = self.chars.clone();
                let mut hashes = 0usize;
                let mut is_raw = false;
                for (_, c) in probe {
                    match c {
                        '#' => hashes += 1,
                        '"' => {
                            is_raw = true;
                            break;
                        }
                        _ => break,
                    }
                }
                if is_raw && text.contains('r') {
                    for _ in 0..=hashes {
                        self.bump(); // hashes plus the opening quote
                    }
                    self.raw_string(hashes, line);
                } else if text == "r" && !is_raw {
                    // Raw identifier r#foo: skip '#', lex the ident.
                    self.bump();
                    if let Some((j, c)) = self.bump() {
                        if c == '_' || c.is_alphabetic() {
                            self.ident_or_prefixed_literal(j, c, line);
                        }
                    }
                } else {
                    self.push(TokKind::Ident, text, line);
                }
            }
            _ => self.push(TokKind::Ident, text, line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_identifiers() {
        assert_eq!(idents(r#"let x = "HashMap::new()";"#), vec!["let", "x"]);
    }

    #[test]
    fn raw_strings_hide_identifiers_and_quotes() {
        let src = r###"let x = r#"a "quoted" HashMap"# ; let y = unwrap;"###;
        assert_eq!(idents(src), vec!["let", "x", "let", "y", "unwrap"]);
    }

    #[test]
    fn byte_and_c_strings_are_literals() {
        assert_eq!(
            idents(r#"f(b"HashMap", br"HashSet", c"Instant");"#),
            vec!["f"]
        );
    }

    #[test]
    fn comments_hide_identifiers_but_are_captured() {
        let out = lex("let a = 1; // uses HashMap\n/* block\nHashSet */ let b = 2;");
        let names: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(names, vec!["let", "a", "let", "b"]);
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].line, 1);
        assert!(out.comments[0].text.contains("HashMap"));
        assert_eq!(out.comments[1].line, 2);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        assert_eq!(idents(src), vec!["fn", "f", "x", "str", "str", "x"]);
    }

    #[test]
    fn char_literals_including_quote_escape() {
        assert_eq!(
            idents(r"let c = '\''; let d = 'x'; let e = '\n';"),
            vec!["let", "c", "let", "d", "let", "e"]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let out = lex("a\nb\n  c");
        let lines: Vec<u32> = out.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn numbers_with_exponents_and_method_calls() {
        // `1.0e-3` must lex as one number; `2.total_cmp` must not eat the dot.
        assert_eq!(
            idents("let x = 1.0e-3; let y = 0xFF_u64;"),
            vec!["let", "x", "let", "y"]
        );
        let out = lex("(2.0_f64).total_cmp(&x)");
        assert!(out
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "total_cmp"));
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("/* a /* b */ c */ let z = 1;"), vec!["let", "z"]);
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        assert_eq!(idents("let r#mod = 1;"), vec!["let", "mod"]);
    }
}
