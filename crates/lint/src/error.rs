//! Error type for the lint engine.

use std::fmt;
use std::path::{Path, PathBuf};

/// Errors the lint engine can surface (all I/O: the lexer and rules
/// themselves never fail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintError {
    /// Reading a file or directory failed.
    Io {
        /// The path being read.
        path: PathBuf,
        /// The rendered I/O error.
        message: String,
    },
}

impl LintError {
    /// Wraps an I/O error with the path being accessed.
    pub fn io(path: &Path, err: &std::io::Error) -> LintError {
        LintError::Io {
            path: path.to_path_buf(),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, message } => {
                write!(f, "io error at {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for LintError {}
