//! `psa-lint` — the determinism & hot-path contract linter for the PSA
//! workspace.
//!
//! Every layer of this reproduction rests on one load-bearing
//! invariant: **byte-identical output at any worker count**. The
//! campaign engine, the fleet monitor, and the joint localizer are all
//! `cmp`-gated on it in CI — but a convention is only a contract once a
//! machine checks it. This crate is that machine: a std-only Rust lexer
//! (comments, strings, raw strings, and lifetimes handled correctly)
//! feeding a rule engine that produces `file:line` diagnostics, with
//! comment suppressions that *must* carry a justification, `--json`
//! output, and a nonzero exit on unsuppressed findings.
//!
//! The rules (see [`rules::RuleId`]):
//!
//! | rule | contract |
//! |------|----------|
//! | `nondet-map-iter` | no `HashMap`/`HashSet` in lib/bin code — iteration order is per-process random |
//! | `panic-in-lib` | no `unwrap`/`panic!`-family in lib code; `expect` needs a literal proof string |
//! | `wallclock-in-lib` | `Instant::now`/`SystemTime` only in `psa_bench::harness` |
//! | `thread-outside-runtime` | thread spawning only in `psa-runtime` |
//! | `stdout-in-lib` | `print!`/`println!` only in binaries — stdout is a byte-compared artifact |
//! | `float-partial-cmp` | never `partial_cmp(..).unwrap()`; use `total_cmp` |
//! | `bad-allow` | suppressions must name known rules and justify themselves |
//!
//! Suppression syntax, on the offending line or the line above:
//!
//! ```text
//! // psa-lint: allow(nondet-map-iter): keys are sorted before iteration
//! ```
//!
//! Scope model: paths classify as library, binary (`src/bin/`,
//! `examples/`), or test (`tests/`, `benches/`) code, and `#[cfg(test)]`
//! items inside library files are test scope — most rules gate library
//! code only, because that is what the deterministic artifacts link.
//!
//! Deliberate limits: this is a lexer, not a compiler. It cannot see
//! through type aliases, `use ... as` renames, or macro expansion, and
//! doc-comment code blocks are comments to it (rustdoc compiles those
//! as test scope anyway). The `clippy.toml` `disallowed-types` /
//! `disallowed-methods` lists provide the type-resolved defense in
//! depth behind it.

pub mod engine;
pub mod error;
pub mod lexer;
pub mod rules;

pub use engine::{lint_source, lint_tree, FileClass, Finding};
pub use error::LintError;
pub use rules::RuleId;
