//! The contract rules: what `psa-lint` checks and where each rule
//! applies.
//!
//! Every rule encodes one determinism or hot-path convention that the
//! reproduction's byte-identical-output guarantee rests on. Rules match
//! on the lexed token stream (see [`crate::lexer`]), so strings and
//! comments can never produce false positives, and apply per *scope*:
//! library code, binary code, or test code (both `tests/` trees and
//! `#[cfg(test)]` regions inside library files).

use crate::lexer::{Tok, TokKind};

/// Where a token lives, for rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Library code: the default for everything under a crate's `src/`.
    Lib,
    /// Binary / example code (`src/bin/`, `examples/`): drives the
    /// artifacts but is not linked into libraries.
    Bin,
    /// Test code: `tests/`, `benches/`, and `#[cfg(test)]` regions.
    Test,
}

/// Identifies one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `HashMap`/`HashSet` (and their random-state machinery) in lib or
    /// bin code: iteration order is randomized per process, which is
    /// exactly the nondeterminism the `cmp`-gated artifacts forbid.
    NondetMapIter,
    /// `unwrap`/`panic!`-family in library code, and `expect` calls
    /// whose argument is not a literal proof string.
    PanicInLib,
    /// `Instant::now`/`SystemTime` outside `psa_bench::harness`: wall
    /// time read in a library breaks replay determinism.
    WallclockInLib,
    /// Thread spawning outside `psa-runtime`: one engine, one
    /// determinism proof.
    ThreadOutsideRuntime,
    /// `print!`/`println!` in library code: stdout is a byte-compared
    /// artifact owned by the bench binaries.
    StdoutInLib,
    /// `partial_cmp(..).unwrap()` on floats (or anything else): float
    /// ordering must use `total_cmp`.
    FloatPartialCmp,
    /// A malformed, unjustified, or unknown-rule `psa-lint: allow`
    /// directive. Emitted by the engine, never matched on tokens.
    BadAllow,
}

impl RuleId {
    /// Every rule, in diagnostic-stable order.
    pub const ALL: [RuleId; 7] = [
        RuleId::NondetMapIter,
        RuleId::PanicInLib,
        RuleId::WallclockInLib,
        RuleId::ThreadOutsideRuntime,
        RuleId::StdoutInLib,
        RuleId::FloatPartialCmp,
        RuleId::BadAllow,
    ];

    /// The rule's kebab-case name as used in diagnostics and `allow(..)`.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::NondetMapIter => "nondet-map-iter",
            RuleId::PanicInLib => "panic-in-lib",
            RuleId::WallclockInLib => "wallclock-in-lib",
            RuleId::ThreadOutsideRuntime => "thread-outside-runtime",
            RuleId::StdoutInLib => "stdout-in-lib",
            RuleId::FloatPartialCmp => "float-partial-cmp",
            RuleId::BadAllow => "bad-allow",
        }
    }

    /// One-line summary for `--rules`.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::NondetMapIter => {
                "no HashMap/HashSet in lib or bin code: iteration order is per-process random"
            }
            RuleId::PanicInLib => {
                "no unwrap/panic!/unreachable!/todo!/unimplemented! in lib code; expect must \
                 carry a literal proof string"
            }
            RuleId::WallclockInLib => {
                "Instant::now/SystemTime only in psa_bench::harness: wall time in a library \
                 breaks replay"
            }
            RuleId::ThreadOutsideRuntime => {
                "thread spawning only in psa-runtime: one engine, one determinism proof"
            }
            RuleId::StdoutInLib => {
                "print!/println! only in binaries: stdout is a byte-compared artifact"
            }
            RuleId::FloatPartialCmp => {
                "never partial_cmp(..).unwrap(): use total_cmp for float ordering"
            }
            RuleId::BadAllow => {
                "psa-lint: allow directives must name known rules and carry a justification"
            }
        }
    }

    /// Parses a rule name as written inside `allow(..)`.
    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == name)
    }

    /// Whether the rule applies to tokens in `scope` for the file at
    /// `path` (a `/`-separated path relative to the workspace root).
    pub fn applies(self, scope: Scope, path: &str) -> bool {
        match self {
            RuleId::NondetMapIter => scope != Scope::Test,
            RuleId::PanicInLib => scope == Scope::Lib,
            RuleId::WallclockInLib => {
                // The bench harness is the one sanctioned wall-clock
                // reader: it exists to time artifacts.
                scope == Scope::Lib && !path.ends_with("crates/bench/src/harness.rs")
            }
            RuleId::ThreadOutsideRuntime => {
                scope != Scope::Test && !path.contains("crates/runtime/src/")
            }
            RuleId::StdoutInLib => scope == Scope::Lib,
            // Float ordering is a correctness contract even in tests: a
            // panicking comparator hides NaNs instead of surfacing them.
            RuleId::FloatPartialCmp => true,
            RuleId::BadAllow => false,
        }
    }
}

/// A rule match before suppression processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    /// Which rule matched.
    pub rule: RuleId,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable message (no path/line prefix).
    pub message: String,
}

fn ident_at(toks: &[Tok], i: usize, name: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
}

fn punct_at(toks: &[Tok], i: usize, ch: char) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Punct(ch))
}

/// `a::b` starting at `i`: Ident(a) ':' ':' Ident(b).
fn path2(toks: &[Tok], i: usize, a: &str, b: &str) -> bool {
    ident_at(toks, i, a)
        && punct_at(toks, i + 1, ':')
        && punct_at(toks, i + 2, ':')
        && ident_at(toks, i + 3, b)
}

/// Index of the `)` matching the `(` at `open` (which must be a `(`),
/// or `None` if unbalanced.
fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Runs every token-matching rule over one file's token stream.
///
/// `scopes[i]` is the scope of `toks[i]`; `path` is the `/`-separated
/// workspace-relative path used for per-path rule exceptions.
pub fn scan(path: &str, toks: &[Tok], scopes: &[Scope]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let mut push = |rule: RuleId, line: u32, message: String| {
        out.push(RawFinding {
            rule,
            line,
            message,
        });
    };

    for i in 0..toks.len() {
        let scope = scopes[i];
        let line = toks[i].line;

        // nondet-map-iter -------------------------------------------------
        if RuleId::NondetMapIter.applies(scope, path) {
            if let Some(name) = ident_match(
                toks,
                i,
                &[
                    "HashMap",
                    "HashSet",
                    "hash_map",
                    "hash_set",
                    "RandomState",
                    "DefaultHasher",
                ],
            ) {
                push(
                    RuleId::NondetMapIter,
                    line,
                    format!(
                        "`{name}` iterates in per-process-random order; use `BTreeMap`/`BTreeSet` \
                         (or justify with an allow)"
                    ),
                );
            }
        }

        // panic-in-lib ----------------------------------------------------
        if RuleId::PanicInLib.applies(scope, path) {
            if punct_at(toks, i, '.')
                && ident_at(toks, i + 1, "unwrap")
                && punct_at(toks, i + 2, '(')
            {
                push(
                    RuleId::PanicInLib,
                    toks[i + 1].line,
                    "`.unwrap()` in library code; return a `Result` or use \
                     `.expect(\"<proof of the invariant>\")`"
                        .to_string(),
                );
            }
            if punct_at(toks, i, '.')
                && ident_at(toks, i + 1, "expect")
                && punct_at(toks, i + 2, '(')
            {
                // `.expect("literal")` is the sanctioned de-panicked form:
                // the message is the proof the invariant holds. Anything
                // else (empty, a variable, a format!) is a violation.
                let arg_is_literal = toks.get(i + 3).is_some_and(|t| t.kind == TokKind::Literal);
                if !arg_is_literal {
                    push(
                        RuleId::PanicInLib,
                        toks[i + 1].line,
                        "`.expect(..)` without a literal proof string; state the invariant \
                         as a string literal or return a `Result`"
                            .to_string(),
                    );
                }
            }
            if let Some(name) =
                ident_match(toks, i, &["panic", "unreachable", "todo", "unimplemented"])
            {
                // Require a macro delimiter after the `!` so `panic != x`
                // (a variable compared with !=) can never match.
                let is_macro = punct_at(toks, i + 1, '!')
                    && (punct_at(toks, i + 2, '(')
                        || punct_at(toks, i + 2, '[')
                        || punct_at(toks, i + 2, '{'));
                if is_macro {
                    push(
                        RuleId::PanicInLib,
                        line,
                        format!("`{name}!` in library code; return an error instead of aborting"),
                    );
                }
            }
        }

        // wallclock-in-lib ------------------------------------------------
        if RuleId::WallclockInLib.applies(scope, path) {
            if path2(toks, i, "Instant", "now") {
                push(
                    RuleId::WallclockInLib,
                    line,
                    "`Instant::now()` in library code; wall time belongs to \
                     `psa_bench::harness` (pass timings in, don't read the clock)"
                        .to_string(),
                );
            }
            if ident_at(toks, i, "SystemTime") {
                push(
                    RuleId::WallclockInLib,
                    line,
                    "`SystemTime` in library code; wall time belongs to `psa_bench::harness`"
                        .to_string(),
                );
            }
        }

        // thread-outside-runtime ------------------------------------------
        if RuleId::ThreadOutsideRuntime.applies(scope, path) {
            if let Some(name) = thread_call(toks, i) {
                push(
                    RuleId::ThreadOutsideRuntime,
                    line,
                    format!(
                        "`{name}` outside `psa-runtime`; all worker threads belong to the \
                         engine so determinism is proved once"
                    ),
                );
            }
        }

        // stdout-in-lib ---------------------------------------------------
        if RuleId::StdoutInLib.applies(scope, path) {
            if let Some(name) = ident_match(toks, i, &["print", "println"]) {
                if punct_at(toks, i + 1, '!') {
                    push(
                        RuleId::StdoutInLib,
                        line,
                        format!(
                            "`{name}!` in library code; stdout is a byte-compared artifact — \
                             return strings to the binary or use stderr"
                        ),
                    );
                }
            }
        }

        // float-partial-cmp -----------------------------------------------
        if RuleId::FloatPartialCmp.applies(scope, path)
            && punct_at(toks, i, '.')
            && ident_at(toks, i + 1, "partial_cmp")
            && punct_at(toks, i + 2, '(')
        {
            if let Some(close) = matching_paren(toks, i + 2) {
                if punct_at(toks, close + 1, '.')
                    && (ident_at(toks, close + 2, "unwrap") || ident_at(toks, close + 2, "expect"))
                {
                    push(
                        RuleId::FloatPartialCmp,
                        toks[i + 1].line,
                        "`partial_cmp(..).unwrap()` panics on NaN and hides total-order bugs; \
                         use `total_cmp`"
                            .to_string(),
                    );
                }
            }
        }
    }
    out
}

/// Matches `toks[i]` against a list of identifier spellings, returning
/// the matched static name.
fn ident_match(toks: &[Tok], i: usize, names: &'static [&'static str]) -> Option<&'static str> {
    let t = toks.get(i)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    names.iter().copied().find(|&n| n == t.text)
}

/// A thread-spawning call: `thread::{spawn,scope,Builder}` or a
/// `.spawn(..)` method call (scoped-thread and builder spawns).
fn thread_call(toks: &[Tok], i: usize) -> Option<&'static str> {
    for (a, b, label) in [
        ("thread", "spawn", "thread::spawn"),
        ("thread", "scope", "thread::scope"),
        ("thread", "Builder", "thread::Builder"),
    ] {
        if path2(toks, i, a, b) {
            return Some(label);
        }
    }
    if punct_at(toks, i, '.') && ident_at(toks, i + 1, "spawn") && punct_at(toks, i + 2, '(') {
        return Some(".spawn(..)");
    }
    None
}
