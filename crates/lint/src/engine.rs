//! The lint engine: file classification, `#[cfg(test)]` region
//! tracking, suppression directives, and the workspace walker.
//!
//! The core entry point is [`lint_source`], a pure function from
//! `(path, class, source)` to findings — the fixture tests drive it on
//! in-memory snippets, and [`lint_tree`] drives it over the real tree.

use crate::error::LintError;
use crate::lexer::{self, Comment, Tok, TokKind};
use crate::rules::{self, RawFinding, RuleId, Scope};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// How a file is linted, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code (a crate's `src/` outside `src/bin/`).
    Lib,
    /// Binary or example code (`src/bin/`, `examples/`, `main.rs`).
    Bin,
    /// Test code (`tests/`, `benches/`).
    Test,
}

impl FileClass {
    /// Classifies a `/`-separated workspace-relative path.
    pub fn classify(path: &str) -> FileClass {
        let components: Vec<&str> = path.split('/').collect();
        if components.iter().any(|c| *c == "tests" || *c == "benches") {
            return FileClass::Test;
        }
        if components.contains(&"examples") {
            return FileClass::Bin;
        }
        if path.contains("src/bin/") || path.ends_with("main.rs") || path.ends_with("build.rs") {
            return FileClass::Bin;
        }
        FileClass::Lib
    }

    fn base_scope(self) -> Scope {
        match self {
            FileClass::Lib => Scope::Lib,
            FileClass::Bin => Scope::Bin,
            FileClass::Test => Scope::Test,
        }
    }
}

/// One diagnostic, after suppression processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// `/`-separated workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: RuleId,
    /// Human-readable message.
    pub message: String,
}

impl Finding {
    /// Renders the standard `path:line: [rule] message` diagnostic line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// A parsed suppression directive: the comment-leading marker followed
/// by `allow(rule, ...): justification`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Directive {
    line: u32,
    rules: Vec<RuleId>,
    /// `Some(problem)` when the directive is malformed; such directives
    /// never suppress anything and produce a `bad-allow` finding.
    problem: Option<String>,
}

const DIRECTIVE_MARKER: &str = "psa-lint:";

/// Parses suppression directives out of the comment side channel.
///
/// A directive must *lead* its comment (`// psa-lint: allow(..): ..`);
/// the marker mid-sentence is prose, not a directive, so documentation
/// can talk about the syntax without tripping `bad-allow`.
fn parse_directives(comments: &[Comment]) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in comments {
        // Normalize doc-comment sigils: `//!`/`/**` bodies arrive with a
        // leading `!`/`*` after the lexer strips the slashes.
        let text = c.text.trim_start_matches(['!', '*']).trim_start();
        let Some(rest) = text.strip_prefix(DIRECTIVE_MARKER) else {
            continue;
        };
        out.push(parse_one_directive(c.line, rest.trim_start()));
    }
    out
}

fn parse_one_directive(line: u32, rest: &str) -> Directive {
    let malformed = |problem: &str| Directive {
        line,
        rules: Vec::new(),
        problem: Some(problem.to_string()),
    };
    let Some(rest) = rest.strip_prefix("allow") else {
        return malformed("expected `allow(<rule>, ...): <justification>`");
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return malformed("expected `(` after `allow`");
    };
    let Some(close) = rest.find(')') else {
        return malformed("unclosed `allow(`");
    };
    let (list, tail) = rest.split_at(close);
    let mut rules = Vec::new();
    for name in list.split(',') {
        let name = name.trim();
        if name.is_empty() {
            return malformed("empty rule name in `allow(..)`");
        }
        match RuleId::from_name(name) {
            Some(r) => rules.push(r),
            None => {
                return Directive {
                    line,
                    rules: Vec::new(),
                    problem: Some(format!("unknown rule `{name}` in `allow(..)`")),
                };
            }
        }
    }
    if rules.is_empty() {
        return malformed("`allow()` lists no rules");
    }
    let tail = tail.trim_start_matches(')').trim_start();
    let Some(justification) = tail.strip_prefix(':') else {
        return Directive {
            line,
            rules,
            problem: Some("missing `: <justification>` after `allow(..)`".to_string()),
        };
    };
    if justification.trim().is_empty() {
        return Directive {
            line,
            rules,
            problem: Some("empty justification — say *why* the contract is safe here".to_string()),
        };
    }
    Directive {
        line,
        rules,
        problem: None,
    }
}

/// Computes per-token scopes: the file's base scope, overridden to
/// [`Scope::Test`] inside `#[cfg(test)]` items (attribute + the item's
/// balanced `{..}` block or terminating `;`).
fn token_scopes(toks: &[Tok], class: FileClass) -> Vec<Scope> {
    let base = class.base_scope();
    let mut scopes = vec![base; toks.len()];
    if base == Scope::Test {
        return scopes;
    }
    let mut i = 0usize;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            let attr_end = i + 7; // '#' '[' cfg '(' test ')' ']'
            let item_end = cfg_item_end(toks, attr_end);
            for s in scopes.iter_mut().take(item_end).skip(i) {
                *s = Scope::Test;
            }
            i = item_end;
        } else {
            i += 1;
        }
    }
    scopes
}

/// `#[cfg(test)]` starting exactly at `i`.
fn is_cfg_test_attr(toks: &[Tok], i: usize) -> bool {
    matches!(toks.get(i), Some(t) if t.kind == TokKind::Punct('#'))
        && matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('['))
        && matches!(toks.get(i + 2), Some(t) if t.kind == TokKind::Ident && t.text == "cfg")
        && matches!(toks.get(i + 3), Some(t) if t.kind == TokKind::Punct('('))
        && matches!(toks.get(i + 4), Some(t) if t.kind == TokKind::Ident && t.text == "test")
        && matches!(toks.get(i + 5), Some(t) if t.kind == TokKind::Punct(')'))
        && matches!(toks.get(i + 6), Some(t) if t.kind == TokKind::Punct(']'))
}

/// End (exclusive token index) of the item following a `#[cfg(test)]`
/// attribute at `start`: skips further attributes, then consumes either
/// a `;`-terminated item or a braced item with balanced `{}`.
fn cfg_item_end(toks: &[Tok], mut start: usize) -> usize {
    // Skip any further attributes.
    while matches!(toks.get(start), Some(t) if t.kind == TokKind::Punct('#'))
        && matches!(toks.get(start + 1), Some(t) if t.kind == TokKind::Punct('['))
    {
        let mut depth = 0usize;
        let mut j = start + 1;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        start = j + 1;
    }
    // Consume the item: first `{` balances to its close; a top-level `;`
    // before any `{` ends the item (e.g. `#[cfg(test)] use helpers;`).
    let mut j = start;
    let mut brace_depth = 0usize;
    let mut saw_brace = false;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct('{') => {
                brace_depth += 1;
                saw_brace = true;
            }
            TokKind::Punct('}') => {
                brace_depth = brace_depth.saturating_sub(1);
                if saw_brace && brace_depth == 0 {
                    return j + 1;
                }
            }
            TokKind::Punct(';') if !saw_brace => return j + 1,
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Lints one file's source text. Pure: no filesystem access.
///
/// `path` must be `/`-separated and workspace-relative — rule path
/// exceptions (`psa_bench::harness`, `psa-runtime`) match on it.
pub fn lint_source(path: &str, class: FileClass, source: &str) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let scopes = token_scopes(&lexed.tokens, class);
    let raw = rules::scan(path, &lexed.tokens, &scopes);
    let directives = parse_directives(&lexed.comments);

    // A directive covers its own line (trailing form) and the next
    // *code* line after it (comment-above form — continuation comment
    // lines in between don't break the link).
    let next_code_line =
        |after: u32| -> Option<u32> { lexed.tokens.iter().map(|t| t.line).find(|&l| l > after) };
    let mut findings: Vec<Finding> = Vec::new();
    for RawFinding {
        rule,
        line,
        message,
    } in raw
    {
        let suppressed = directives.iter().any(|d| {
            d.problem.is_none()
                && d.rules.contains(&rule)
                && (d.line == line || next_code_line(d.line) == Some(line))
        });
        if !suppressed {
            findings.push(Finding {
                path: path.to_string(),
                line,
                rule,
                message,
            });
        }
    }
    for d in &directives {
        if let Some(problem) = &d.problem {
            findings.push(Finding {
                path: path.to_string(),
                line: d.line,
                rule: RuleId::BadAllow,
                message: problem.clone(),
            });
        }
    }
    findings.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(&b.rule)));
    findings
}

/// Recursively collects `.rs` files under `root`, skipping `target`,
/// VCS metadata, and hidden directories. Paths come back sorted so
/// diagnostics are deterministic.
pub fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut out = BTreeSet::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|e| LintError::io(&dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| LintError::io(&dir, &e))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.insert(path);
            }
        }
    }
    Ok(out.into_iter().collect())
}

/// Lints every `.rs` file under `root` and returns all findings, sorted
/// by path then line.
pub fn lint_tree(root: &Path) -> Result<Vec<Finding>, LintError> {
    let mut findings = Vec::new();
    for file in collect_rs_files(root)? {
        let rel = relative_label(root, &file);
        let class = FileClass::classify(&rel);
        let source = std::fs::read_to_string(&file).map_err(|e| LintError::io(&file, &e))?;
        findings.extend(lint_source(&rel, class, &source));
    }
    findings.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(&b.rule))
    });
    Ok(findings)
}

/// `/`-separated path of `file` relative to `root` (falls back to the
/// full path when `file` is not under `root`).
fn relative_label(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Serializes findings as a JSON array (std-only writer).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.path),
            f.line,
            f.rule.name(),
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        s.push('\n');
    }
    s.push(']');
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_paths() {
        assert_eq!(FileClass::classify("crates/ml/src/knn.rs"), FileClass::Lib);
        assert_eq!(
            FileClass::classify("crates/bench/src/bin/table1.rs"),
            FileClass::Bin
        );
        assert_eq!(FileClass::classify("tests/atlas.rs"), FileClass::Test);
        assert_eq!(
            FileClass::classify("crates/core/tests/monitor.rs"),
            FileClass::Test
        );
        assert_eq!(FileClass::classify("examples/probe.rs"), FileClass::Bin);
        assert_eq!(FileClass::classify("src/lib.rs"), FileClass::Lib);
    }

    #[test]
    fn cfg_test_region_is_test_scope() {
        let src = "use std::collections::BTreeMap;\n\
                   #[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let findings = lint_source("crates/x/src/lib.rs", FileClass::Lib, src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cfg_test_on_semicolon_item() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn f() {}\n";
        let findings = lint_source("crates/x/src/lib.rs", FileClass::Lib, src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn directive_parsing_accepts_good_and_rejects_bad() {
        let good = parse_one_directive(1, "allow(nondet-map-iter): keys are pre-sorted");
        assert!(good.problem.is_none());
        assert_eq!(good.rules, vec![RuleId::NondetMapIter]);

        let two = parse_one_directive(1, "allow(stdout-in-lib, panic-in-lib): bench harness");
        assert!(two.problem.is_none());
        assert_eq!(two.rules.len(), 2);

        for bad in [
            "deny(nondet-map-iter): nope",
            "allow nondet-map-iter: no parens",
            "allow(nondet-map-iter)",
            "allow(nondet-map-iter):   ",
            "allow(made-up-rule): whatever",
            "allow(): empty",
        ] {
            assert!(
                parse_one_directive(1, bad).problem.is_some(),
                "should reject {bad:?}"
            );
        }
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let f = Finding {
            path: "a.rs".into(),
            line: 3,
            rule: RuleId::StdoutInLib,
            message: "say \"hi\"\nthere".into(),
        };
        let json = findings_to_json(&[f]);
        assert!(json.contains("say \\\"hi\\\"\\nthere"));
        assert_eq!(findings_to_json(&[]), "[]");
    }
}
