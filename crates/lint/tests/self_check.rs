//! The linter's own acceptance gate: the committed workspace must be
//! clean, and a seeded violation must fail — run here exactly as the CI
//! `lint` job runs it, so the job can never silently pass on a tree the
//! engine doesn't actually check.

use psa_lint::lint_tree;
use psa_lint::rules::RuleId;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn committed_workspace_is_lint_clean() {
    let findings = lint_tree(&workspace_root()).expect("workspace tree is readable");
    assert!(
        findings.is_empty(),
        "the committed workspace must carry zero unsuppressed findings:\n{}",
        findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_scan_covers_every_crate() {
    // Guard against the walker silently skipping the tree it is
    // supposed to police: every workspace crate's src must contribute
    // files to the scan.
    let root = workspace_root();
    let files = psa_lint::engine::collect_rs_files(&root).expect("walkable tree");
    for krate in [
        "dsp", "ml", "layout", "gatesim", "field", "array", "analog", "core", "runtime", "bench",
        "lint",
    ] {
        let prefix = root.join("crates").join(krate).join("src");
        assert!(
            files.iter().any(|f| f.starts_with(&prefix)),
            "no files scanned under {}",
            prefix.display()
        );
    }
    // And the walker must skip build artifacts.
    assert!(files
        .iter()
        .all(|f| !f.components().any(|c| c.as_os_str() == "target")));
}

#[test]
fn seeded_violation_fails_the_tree_scan() {
    // The negative control for the CI job: drop one nondeterministic
    // map into a scratch tree and the scan must report it.
    let dir = std::env::temp_dir().join(format!("psa-lint-seeded-{}", std::process::id()));
    let src_dir = dir.join("src");
    std::fs::create_dir_all(&src_dir).expect("temp dir is writable");
    std::fs::write(
        src_dir.join("lib.rs"),
        "use std::collections::HashMap;\npub fn f() { println!(\"x\"); }\n",
    )
    .expect("temp file is writable");

    let findings = lint_tree(&dir).expect("scratch tree is readable");
    let rules: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&RuleId::NondetMapIter), "{findings:?}");
    assert!(rules.contains(&RuleId::StdoutInLib), "{findings:?}");

    // And the binary itself must exit nonzero on it — this is exactly
    // what makes the CI `lint` job fail.
    let out = Command::new(env!("CARGO_BIN_EXE_psa-lint"))
        .arg(&dir)
        .output()
        .expect("psa-lint binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "expected exit 1 on a seeded violation"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("nondet-map-iter"), "{stdout}");

    std::fs::remove_dir_all(&dir).expect("temp dir is removable");
}

#[test]
fn clean_tree_exits_zero_and_json_is_empty() {
    let dir = std::env::temp_dir().join(format!("psa-lint-clean-{}", std::process::id()));
    let src_dir = dir.join("src");
    std::fs::create_dir_all(&src_dir).expect("temp dir is writable");
    std::fs::write(
        src_dir.join("lib.rs"),
        "use std::collections::BTreeMap;\npub fn f() -> BTreeMap<u8, u8> { BTreeMap::new() }\n",
    )
    .expect("temp file is writable");

    let out = Command::new(env!("CARGO_BIN_EXE_psa-lint"))
        .arg(&dir)
        .output()
        .expect("psa-lint binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    let json_out = Command::new(env!("CARGO_BIN_EXE_psa-lint"))
        .arg("--json")
        .arg(&dir)
        .output()
        .expect("psa-lint binary runs");
    assert_eq!(String::from_utf8_lossy(&json_out.stdout).trim(), "[]");

    std::fs::remove_dir_all(&dir).expect("temp dir is removable");
}

#[test]
fn every_allow_in_the_workspace_is_justified() {
    // bad-allow findings surface malformed or unjustified suppressions;
    // a clean tree therefore proves every committed allow carries its
    // justification. This test makes that implication explicit (and
    // keeps failing loudly even if other rules are ever relaxed).
    let findings = lint_tree(&workspace_root()).expect("workspace tree is readable");
    let bad: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RuleId::BadAllow)
        .collect();
    assert!(bad.is_empty(), "unjustified or malformed allows: {bad:?}");
}
