//! Fixture-driven coverage for every lint rule: positive snippets (the
//! rule fires), negative snippets (it stays quiet), suppressed
//! snippets (a justified allow silences it), and the lexer traps —
//! violations spelled inside raw strings and comments must never fire.

use psa_lint::engine::lint_source;
use psa_lint::rules::RuleId;
use psa_lint::FileClass;

const LIB: &str = "crates/x/src/lib.rs";

fn findings(src: &str) -> Vec<(RuleId, u32)> {
    lint_source(LIB, FileClass::Lib, src)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

fn rules_fired(src: &str) -> Vec<RuleId> {
    findings(src).into_iter().map(|(r, _)| r).collect()
}

// --- nondet-map-iter --------------------------------------------------

#[test]
fn nondet_map_iter_positive() {
    let src = "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> { HashMap::new() }\n";
    let fired = findings(src);
    assert!(fired.iter().all(|(r, _)| *r == RuleId::NondetMapIter));
    assert_eq!(fired.len(), 3);
    assert!(
        rules_fired("fn f() { let _ = std::collections::HashSet::<u32>::new(); }")
            .contains(&RuleId::NondetMapIter)
    );
    // The random-state machinery counts too.
    assert!(rules_fired("use std::collections::hash_map::RandomState;")
        .contains(&RuleId::NondetMapIter));
}

#[test]
fn nondet_map_iter_negative() {
    let src = "use std::collections::{BTreeMap, BTreeSet};\nfn f() -> BTreeMap<u32, u32> { BTreeMap::new() }\n";
    assert!(findings(src).is_empty());
}

#[test]
fn nondet_map_iter_suppressed() {
    let src = "// psa-lint: allow(nondet-map-iter): values drained into a sorted Vec before use\n\
               use std::collections::HashMap;\n";
    assert!(findings(src).is_empty(), "{:?}", findings(src));
}

#[test]
fn nondet_map_iter_applies_to_bins_but_not_tests() {
    // Bench binaries print byte-compared artifacts, so the rule covers
    // them as well as libraries.
    let bin = lint_source(
        "crates/bench/src/bin/table9.rs",
        FileClass::Bin,
        "use std::collections::HashMap;\n",
    );
    assert_eq!(bin.len(), 1);
    let test = lint_source(
        "tests/foo.rs",
        FileClass::Test,
        "use std::collections::HashMap;\n",
    );
    assert!(test.is_empty());
}

// --- panic-in-lib -----------------------------------------------------

#[test]
fn panic_in_lib_positive() {
    assert_eq!(
        rules_fired("fn f(x: Option<u32>) -> u32 { x.unwrap() }"),
        vec![RuleId::PanicInLib]
    );
    assert_eq!(
        rules_fired("fn f() { panic!(\"boom\"); }"),
        vec![RuleId::PanicInLib]
    );
    assert_eq!(
        rules_fired("fn f() { unreachable!() }"),
        vec![RuleId::PanicInLib]
    );
    assert_eq!(rules_fired("fn f() { todo!() }"), vec![RuleId::PanicInLib]);
    // expect with a non-literal message is not a proof string.
    assert_eq!(
        rules_fired("fn f(x: Option<u32>, m: &str) -> u32 { x.expect(m) }"),
        vec![RuleId::PanicInLib]
    );
}

#[test]
fn panic_in_lib_negative() {
    // The sanctioned de-panicked form: a literal proof of the invariant.
    assert!(
        rules_fired("fn f(x: Option<u32>) -> u32 { x.expect(\"validated above\") }").is_empty()
    );
    // unwrap_or and friends are fine.
    assert!(rules_fired("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }").is_empty());
    assert!(rules_fired("fn f(x: Option<u32>) -> u32 { x.unwrap_or_default() }").is_empty());
    // `panic` as an identifier (e.g. a bool) is not the macro.
    assert!(rules_fired("fn f(panic: bool) -> bool { panic != false }").is_empty());
    // Bins and tests may unwrap.
    assert!(lint_source(
        "crates/b/src/bin/m.rs",
        FileClass::Bin,
        "fn f(x: Option<u32>) { x.unwrap(); }"
    )
    .is_empty());
    assert!(lint_source(
        "tests/t.rs",
        FileClass::Test,
        "fn f() { panic!(\"in tests\") }"
    )
    .is_empty());
}

#[test]
fn panic_in_lib_cfg_test_region_exempt() {
    let src = "fn lib_fn() -> u32 { 1 }\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   #[test]\n\
               \x20   fn t() { Some(1).unwrap(); panic!(\"ok in tests\"); }\n\
               }\n";
    assert!(findings(src).is_empty(), "{:?}", findings(src));
}

#[test]
fn panic_in_lib_suppressed() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               \x20   // psa-lint: allow(panic-in-lib): slot was filled by the loop above\n\
               \x20   x.unwrap()\n\
               }\n";
    assert!(findings(src).is_empty());
}

// --- wallclock-in-lib -------------------------------------------------

#[test]
fn wallclock_positive() {
    assert_eq!(
        rules_fired("fn f() { let _t = std::time::Instant::now(); }"),
        vec![RuleId::WallclockInLib]
    );
    assert_eq!(
        rules_fired("use std::time::SystemTime;"),
        vec![RuleId::WallclockInLib]
    );
}

#[test]
fn wallclock_negative_and_harness_exempt() {
    // Storing or diffing an Instant passed in is fine — only reading
    // the clock is gated.
    assert!(
        rules_fired("fn f(t: std::time::Instant) -> u128 { t.elapsed().as_nanos() }").is_empty()
    );
    let harness = lint_source(
        "crates/bench/src/harness.rs",
        FileClass::Lib,
        "fn f() { let _ = std::time::Instant::now(); }",
    );
    assert!(harness.is_empty());
    // Bins time their own walls.
    assert!(lint_source(
        "crates/bench/src/bin/table9.rs",
        FileClass::Bin,
        "fn f() { let _ = std::time::Instant::now(); }"
    )
    .is_empty());
}

// --- thread-outside-runtime -------------------------------------------

#[test]
fn thread_positive() {
    assert_eq!(
        rules_fired("fn f() { std::thread::spawn(|| {}); }"),
        vec![RuleId::ThreadOutsideRuntime]
    );
    assert_eq!(
        rules_fired("fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }").len(),
        2 // the scope call and the scoped spawn
    );
}

#[test]
fn thread_negative_and_runtime_exempt() {
    // Sleeping is not spawning.
    assert!(
        rules_fired("fn f() { std::thread::sleep(std::time::Duration::from_millis(1)); }")
            .is_empty()
    );
    let engine = lint_source(
        "crates/runtime/src/engine.rs",
        FileClass::Lib,
        "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }",
    );
    assert!(engine.is_empty());
}

// --- stdout-in-lib ----------------------------------------------------

#[test]
fn stdout_positive() {
    assert_eq!(
        rules_fired("fn f() { println!(\"hi\"); }"),
        vec![RuleId::StdoutInLib]
    );
    assert_eq!(
        rules_fired("fn f() { print!(\"hi\"); }"),
        vec![RuleId::StdoutInLib]
    );
}

#[test]
fn stdout_negative() {
    // stderr is not an artifact.
    assert!(rules_fired("fn f() { eprintln!(\"timing: 3s\"); }").is_empty());
    // Binaries own stdout.
    assert!(lint_source(
        "crates/bench/src/bin/table9.rs",
        FileClass::Bin,
        "fn main() { println!(\"table\"); }"
    )
    .is_empty());
}

#[test]
fn stdout_suppressed_through_comment_block() {
    // The allow may sit atop a multi-line comment directly above the
    // offending line — continuation comment lines don't break it.
    let src = "fn f() {\n\
               \x20   // psa-lint: allow(stdout-in-lib): this report line is the\n\
               \x20   // harness's own stdout contract\n\
               \x20   println!(\"report\");\n\
               }\n";
    assert!(findings(src).is_empty(), "{:?}", findings(src));
}

// --- float-partial-cmp ------------------------------------------------

#[test]
fn float_partial_cmp_positive() {
    // In lib scope the `.unwrap()` itself also trips panic-in-lib;
    // both diagnostics point at the same line.
    assert_eq!(
        rules_fired("fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }"),
        vec![RuleId::PanicInLib, RuleId::FloatPartialCmp]
    );
    // expect is no better than unwrap here.
    assert_eq!(
        rules_fired("fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b).expect(\"no NaN\"); }"),
        // The expect also fires panic-in-lib? No: a literal proof string
        // is sanctioned there — only float-partial-cmp fires.
        vec![RuleId::FloatPartialCmp]
    );
    // This one applies even in tests.
    assert_eq!(
        lint_source(
            "tests/t.rs",
            FileClass::Test,
            "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }"
        )
        .len(),
        1
    );
}

#[test]
fn float_partial_cmp_negative() {
    assert!(rules_fired("fn f(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }").is_empty());
    // partial_cmp handled as an Option is legitimate.
    assert!(rules_fired(
        "fn f(a: f64, b: f64) -> std::cmp::Ordering { a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal) }"
    )
    .is_empty());
}

// --- lexer traps: strings & comments must never fire ------------------

#[test]
fn violations_inside_strings_do_not_fire() {
    let src = r##"
fn f() -> String {
    let a = "HashMap::new() and x.unwrap() and println!";
    let b = r#"Instant::now() inside a "raw" string: std::thread::spawn"#;
    format!("{a}{b}")
}
"##;
    assert!(findings(src).is_empty(), "{:?}", findings(src));
}

#[test]
fn violations_inside_comments_do_not_fire() {
    let src = "fn f() {}\n\
               // dead code kept for reference: let m = HashMap::new();\n\
               /* multi-line: x.unwrap(); println!(\"t\"); Instant::now()\n\
               \x20  still comment: std::thread::spawn(|| {}); */\n";
    assert!(findings(src).is_empty(), "{:?}", findings(src));
}

#[test]
fn raw_string_ending_trap_does_not_desync_the_lexer() {
    // A raw string whose body contains quote-hash sequences: if the
    // lexer closed early, the HashMap after it would vanish or the one
    // inside would fire.
    let src = r###"
fn f() -> &'static str {
    let s = r##"decoys: HashMap "# x.unwrap() "quoted" println!"## ;
    let _m: std::collections::HashMap<u8, u8> = Default::default();
    s
}
"###;
    // The decoys inside the raw string are invisible; the real HashMap
    // AFTER it must fire exactly once — proof the lexer closed the raw
    // string at `"##` and not at the embedded `"#` or `"`.
    let fired = findings(src);
    assert_eq!(fired.len(), 1, "{fired:?}");
    assert_eq!(fired[0].0, RuleId::NondetMapIter);
}

// --- suppression hygiene ----------------------------------------------

#[test]
fn unjustified_allow_does_not_suppress_and_reports_bad_allow() {
    let src = "// psa-lint: allow(nondet-map-iter):\nuse std::collections::HashMap;\n";
    let fired = rules_fired(src);
    assert!(fired.contains(&RuleId::NondetMapIter), "{fired:?}");
    assert!(fired.contains(&RuleId::BadAllow), "{fired:?}");
}

#[test]
fn unknown_rule_allow_reports_bad_allow() {
    let fired = rules_fired("// psa-lint: allow(no-such-rule): because\nfn f() {}\n");
    assert_eq!(fired, vec![RuleId::BadAllow]);
}

#[test]
fn allow_only_covers_adjacent_line() {
    // An allow can't blanket a whole file: two lines down it no longer
    // applies.
    let src = "// psa-lint: allow(nondet-map-iter): only covers the next code line\n\
               fn ok() {}\n\
               use std::collections::HashMap;\n";
    assert_eq!(rules_fired(src), vec![RuleId::NondetMapIter]);
}

#[test]
fn trailing_same_line_allow_works() {
    let src =
        "use std::collections::HashMap; // psa-lint: allow(nondet-map-iter): re-sorted on drain\n";
    assert!(findings(src).is_empty());
}

#[test]
fn multi_rule_allow_works() {
    let src = "// psa-lint: allow(nondet-map-iter, panic-in-lib): fixture exercising both\n\
               fn f(m: std::collections::HashMap<u8, u8>) -> u8 { m.get(&0).copied().unwrap() }\n";
    assert!(findings(src).is_empty(), "{:?}", findings(src));
}

#[test]
fn prose_mentions_of_the_marker_are_not_directives() {
    // Mid-sentence mentions (like documentation describing the syntax)
    // are prose, not directives.
    let src = "/// Suppress with a psa-lint: allow line when justified.\nfn f() {}\n";
    assert!(findings(src).is_empty(), "{:?}", findings(src));
}

// --- diagnostics surface ----------------------------------------------

#[test]
fn findings_carry_file_line_and_render_stably() {
    let src = "fn a() {}\nfn b() { println!(\"x\"); }\n";
    let out = lint_source("crates/x/src/lib.rs", FileClass::Lib, src);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].line, 2);
    let rendered = out[0].render();
    assert!(
        rendered.starts_with("crates/x/src/lib.rs:2: [stdout-in-lib]"),
        "{rendered}"
    );
}

#[test]
fn json_output_is_wellformed() {
    let src = "fn b() { println!(\"x\"); }\n";
    let out = lint_source("crates/x/src/lib.rs", FileClass::Lib, src);
    let json = psa_lint::engine::findings_to_json(&out);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(json.contains("\"rule\": \"stdout-in-lib\""));
    assert!(json.contains("\"line\": 1"));
}
