//! Planar geometry in microns.
//!
//! All coordinates in the workspace are microns in the die plane, with
//! the origin at the die's lower-left corner. The flux integrator needs
//! areas, containment tests, intersections and centroids; nothing more
//! exotic.

use crate::error::LayoutError;
use std::fmt;

/// A point in the die plane (µm).
///
/// # Example
///
/// ```
/// use psa_layout::Point;
/// let p = Point::new(3.0, 4.0);
/// assert_eq!(p.distance_to(Point::ORIGIN), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate in microns.
    pub x: f64,
    /// Y coordinate in microns.
    pub y: f64,
}

impl Point {
    /// The origin (0, 0).
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance_to(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Midpoint between two points.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2}) um", self.x, self.y)
    }
}

/// An axis-aligned rectangle (µm), stored as min/max corners.
///
/// # Example
///
/// ```
/// use psa_layout::Rect;
/// let r = Rect::new(0.0, 0.0, 10.0, 5.0);
/// assert_eq!(r.area(), 50.0);
/// assert!(r.contains(psa_layout::Point::new(5.0, 2.5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from two corners; the corners may be given in
    /// any order and are normalized.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect {
            min: Point::new(x0.min(x1), y0.min(y1)),
            max: Point::new(x0.max(x1), y0.max(y1)),
        }
    }

    /// Creates a rectangle from a corner plus width/height.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::DegenerateRect`] when either extent is not
    /// strictly positive.
    pub fn from_size(x: f64, y: f64, w: f64, h: f64) -> Result<Self, LayoutError> {
        if w <= 0.0 || h <= 0.0 {
            return Err(LayoutError::DegenerateRect {
                width_um: w,
                height_um: h,
            });
        }
        Ok(Rect::new(x, y, x + w, y + h))
    }

    /// Creates a rectangle centred on `c` with the given width/height.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::DegenerateRect`] when either extent is not
    /// strictly positive.
    pub fn centered(c: Point, w: f64, h: f64) -> Result<Self, LayoutError> {
        Rect::from_size(c.x - w / 2.0, c.y - h / 2.0, w, h)
    }

    /// Minimum (lower-left) corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// Maximum (upper-right) corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width in µm.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in µm.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in µm².
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// `true` if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// `true` if the rectangles overlap with positive area.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x < other.max.x
            && other.min.x < self.max.x
            && self.min.y < other.max.y
            && other.min.y < self.max.y
    }

    /// The overlapping region, if it has positive area.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min: Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        })
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Rectangle grown by `margin` µm on every side (shrunk if negative;
    /// the result is clamped to remain non-degenerate).
    pub fn inflate(&self, margin: f64) -> Rect {
        let mut r = Rect {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        };
        if r.min.x > r.max.x {
            let m = (r.min.x + r.max.x) / 2.0;
            r.min.x = m;
            r.max.x = m;
        }
        if r.min.y > r.max.y {
            let m = (r.min.y + r.max.y) / 2.0;
            r.min.y = m;
            r.max.y = m;
        }
        r
    }

    /// The four corners counter-clockwise from the lower-left.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// This rectangle as a 4-vertex polygon.
    pub fn to_polygon(&self) -> Polygon {
        Polygon::new(self.corners().to_vec()).expect("4 corners are enough")
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.1},{:.1} .. {:.1},{:.1}] um",
            self.min.x, self.min.y, self.max.x, self.max.y
        )
    }
}

/// A simple polygon (vertices in order, implicitly closed).
///
/// Programmed PSA coils are rectilinear but not always rectangular
/// (L-shapes, multi-turn spirals), so the flux integrator works on
/// polygons.
///
/// # Example
///
/// ```
/// use psa_layout::{Point, Polygon};
/// let tri = Polygon::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(0.0, 3.0),
/// ])?;
/// assert_eq!(tri.area(), 6.0);
/// # Ok::<(), psa_layout::LayoutError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from at least three vertices.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::TooFewVertices`] with fewer than three.
    pub fn new(vertices: Vec<Point>) -> Result<Self, LayoutError> {
        if vertices.len() < 3 {
            return Err(LayoutError::TooFewVertices {
                got: vertices.len(),
            });
        }
        Ok(Polygon { vertices })
    }

    /// The vertices in order.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Signed area via the shoelace formula (positive for counter-
    /// clockwise winding).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.x * b.y - b.x * a.y;
        }
        acc / 2.0
    }

    /// Absolute area in µm².
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Area centroid. Falls back to the vertex mean for zero-area
    /// polygons.
    pub fn centroid(&self) -> Point {
        let a = self.signed_area();
        if a.abs() < 1e-12 {
            let n = self.vertices.len() as f64;
            let sx: f64 = self.vertices.iter().map(|p| p.x).sum();
            let sy: f64 = self.vertices.iter().map(|p| p.y).sum();
            return Point::new(sx / n, sy / n);
        }
        let n = self.vertices.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let cross = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * cross;
            cy += (p.y + q.y) * cross;
        }
        Point::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Even-odd point containment (boundary points may go either way).
    pub fn contains(&self, p: Point) -> bool {
        let n = self.vertices.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if ((vi.y > p.y) != (vj.y > p.y))
                && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Axis-aligned bounding box.
    pub fn bounding_box(&self) -> Rect {
        let mut min = self.vertices[0];
        let mut max = self.vertices[0];
        for v in &self.vertices {
            min.x = min.x.min(v.x);
            min.y = min.y.min(v.y);
            max.x = max.x.max(v.x);
            max.y = max.y.max(v.y);
        }
        Rect { min, max }
    }

    /// Total perimeter length in µm.
    pub fn perimeter(&self) -> f64 {
        let n = self.vertices.len();
        (0..n)
            .map(|i| self.vertices[i].distance_to(self.vertices[(i + 1) % n]))
            .sum()
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "polygon[{} vertices, {:.1} um^2]",
            self.vertices.len(),
            self.area()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(6.0, 8.0);
        assert_eq!(a.distance_to(b), 10.0);
        assert_eq!(a.midpoint(b), Point::new(3.0, 4.0));
    }

    #[test]
    fn rect_normalizes_corners() {
        let r = Rect::new(10.0, 5.0, 0.0, 0.0);
        assert_eq!(r.min(), Point::new(0.0, 0.0));
        assert_eq!(r.max(), Point::new(10.0, 5.0));
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 5.0);
        assert_eq!(r.area(), 50.0);
        assert_eq!(r.center(), Point::new(5.0, 2.5));
    }

    #[test]
    fn rect_from_size_validates() {
        assert!(Rect::from_size(0.0, 0.0, 1.0, 1.0).is_ok());
        assert!(Rect::from_size(0.0, 0.0, 0.0, 1.0).is_err());
        assert!(Rect::from_size(0.0, 0.0, 1.0, -1.0).is_err());
        assert!(Rect::centered(Point::ORIGIN, 2.0, 2.0).is_ok());
    }

    #[test]
    fn rect_contains_boundary() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(2.0, 2.0)));
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(!r.contains(Point::new(2.1, 1.0)));
    }

    #[test]
    fn rect_intersection_cases() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, 5.0, 15.0, 15.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(5.0, 5.0, 10.0, 10.0));
        assert_eq!(i.area(), 25.0);
        // Touching edges: zero-area, no intersection.
        let c = Rect::new(10.0, 0.0, 20.0, 10.0);
        assert!(a.intersection(&c).is_none());
        // Disjoint.
        let d = Rect::new(100.0, 100.0, 110.0, 110.0);
        assert!(a.intersection(&d).is_none());
        assert!(!a.intersects(&d));
    }

    #[test]
    fn rect_union_and_inflate() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(4.0, 4.0, 5.0, 5.0);
        assert_eq!(a.union(&b), Rect::new(0.0, 0.0, 5.0, 5.0));
        let g = a.inflate(1.0);
        assert_eq!(g, Rect::new(-1.0, -1.0, 2.0, 2.0));
        // Over-shrinking collapses to the centre instead of inverting.
        let s = a.inflate(-10.0);
        assert!(s.area() == 0.0);
        assert_eq!(s.center(), a.center());
    }

    #[test]
    fn polygon_area_square_and_triangle() {
        let sq = Rect::new(0.0, 0.0, 2.0, 2.0).to_polygon();
        assert_eq!(sq.area(), 4.0);
        assert!(sq.signed_area() > 0.0); // counter-clockwise corners
        let tri = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 3.0),
        ])
        .unwrap();
        assert_eq!(tri.area(), 6.0);
    }

    #[test]
    fn polygon_validates_vertex_count() {
        assert!(Polygon::new(vec![Point::ORIGIN, Point::new(1.0, 1.0)]).is_err());
    }

    #[test]
    fn polygon_centroid_of_square() {
        let sq = Rect::new(2.0, 2.0, 6.0, 6.0).to_polygon();
        let c = sq.centroid();
        assert!((c.x - 4.0).abs() < 1e-12);
        assert!((c.y - 4.0).abs() < 1e-12);
    }

    #[test]
    fn polygon_contains() {
        let sq = Rect::new(0.0, 0.0, 10.0, 10.0).to_polygon();
        assert!(sq.contains(Point::new(5.0, 5.0)));
        assert!(!sq.contains(Point::new(15.0, 5.0)));
        // L-shape.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 5.0),
            Point::new(5.0, 5.0),
            Point::new(5.0, 10.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap();
        assert!(l.contains(Point::new(2.0, 8.0)));
        assert!(!l.contains(Point::new(8.0, 8.0)));
        assert_eq!(l.area(), 75.0);
    }

    #[test]
    fn polygon_bounding_box_and_perimeter() {
        let tri = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 4.0),
        ])
        .unwrap();
        assert_eq!(tri.bounding_box(), Rect::new(0.0, 0.0, 3.0, 4.0));
        assert_eq!(tri.perimeter(), 12.0);
    }

    #[test]
    fn display_impls() {
        assert!(Point::new(1.0, 2.0).to_string().contains("um"));
        assert!(Rect::new(0.0, 0.0, 1.0, 1.0).to_string().contains(".."));
        let sq = Rect::new(0.0, 0.0, 2.0, 2.0).to_polygon();
        assert!(sq.to_string().contains("4 vertices"));
    }
}
