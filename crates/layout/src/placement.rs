//! Deterministic standard-cell placement and EM source clustering.
//!
//! Cells are placed in rows inside each module's region (classic
//! row-based placement with a fixed cell height), deterministically from
//! a seed. For the EM model, cells are then aggregated into square
//! *clusters* (tiles): each cluster becomes one magnetic-dipole source
//! whose strength is the sum of its cells' switching charges. This keeps
//! the coupling matrix small (hundreds of clusters) while preserving the
//! spatial distribution that Trojan localization depends on.

use crate::error::LayoutError;
use crate::floorplan::{Floorplan, Module, ModuleKind};
use crate::geom::{Point, Rect};
use crate::stdcell::StdCellKind;

/// Standard-cell row height, µm (65 nm-class 9-track library).
pub const CELL_ROW_HEIGHT_UM: f64 = 1.8;

/// A placed standard cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacedCell {
    /// Cell kind.
    pub kind: StdCellKind,
    /// Cell centre position on the die, µm.
    pub pos: Point,
    /// Which module the cell belongs to.
    pub module: ModuleKind,
}

/// A cluster of placed cells acting as one EM source tile.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Charge-weighted centroid of the member cells, µm.
    pub centroid: Point,
    /// Sum of member cells' switching charge, fC per average toggle.
    pub total_charge_fc: f64,
    /// Number of member cells.
    pub cell_count: usize,
    /// The module the cells belong to (clusters never span modules).
    pub module: ModuleKind,
}

/// Places `module.cell_count` cells into `module.region` in rows.
///
/// The cell kinds cycle deterministically through the module's
/// [`CellMix`](crate::stdcell::CellMix) proportions; a small
/// seed-dependent jitter decorrelates positions between builds without
/// affecting aggregate statistics.
///
/// # Errors
///
/// Returns [`LayoutError::RegionOverflow`] when the region cannot hold
/// the requested number of cells.
pub fn place_module(module: &Module, seed: u64) -> Result<Vec<PlacedCell>, LayoutError> {
    let region = module.region;
    let mean_area = module.mix.mean_area_um2();
    let capacity = (region.area() / (mean_area * 1.05)) as usize;
    if module.cell_count > capacity {
        return Err(LayoutError::RegionOverflow {
            requested: module.cell_count,
            capacity,
        });
    }

    // Expand the mix into a deterministic repeating pattern of kinds.
    let pattern = mix_pattern(module);

    let rows = (region.height() / CELL_ROW_HEIGHT_UM).floor().max(1.0) as usize;
    let per_row = module.cell_count.div_ceil(rows);
    let mut rng = SplitMix64::new(seed ^ module.kind as u64);
    let mut cells = Vec::with_capacity(module.cell_count);
    'outer: for r in 0..rows {
        let y = region.min().y + (r as f64 + 0.5) * CELL_ROW_HEIGHT_UM;
        if y > region.max().y {
            break;
        }
        let mut x = region.min().x;
        for c in 0..per_row {
            if cells.len() >= module.cell_count {
                break 'outer;
            }
            let kind = pattern[(r * per_row + c) % pattern.len()];
            let w = kind.area_um2() / CELL_ROW_HEIGHT_UM;
            if x + w > region.max().x {
                break; // row full; continue on the next row
            }
            let jitter = (rng.next_f64() - 0.5) * 0.2;
            cells.push(PlacedCell {
                kind,
                pos: Point::new(x + w / 2.0 + jitter, y),
                module: module.kind,
            });
            x += w * 1.05; // small placement gap
        }
    }
    // If row packing ran out of room (due to gaps), wrap the remainder
    // back through the region deterministically.
    let mut k = 0usize;
    while cells.len() < module.cell_count {
        let kind = pattern[cells.len() % pattern.len()];
        let fx = rng.next_f64();
        let fy = rng.next_f64();
        cells.push(PlacedCell {
            kind,
            pos: Point::new(
                region.min().x + fx * region.width(),
                region.min().y + fy * region.height(),
            ),
            module: module.kind,
        });
        k += 1;
        if k > module.cell_count * 2 {
            break;
        }
    }
    Ok(cells)
}

fn mix_pattern(module: &Module) -> Vec<StdCellKind> {
    // 100-slot pattern matching the mix proportions.
    let mut pattern = Vec::with_capacity(100);
    for (kind, w) in module.mix.entries() {
        let n = (w * 100.0).round() as usize;
        pattern.extend(std::iter::repeat_n(*kind, n.max(1)));
    }
    if pattern.is_empty() {
        pattern.push(StdCellKind::Nand2);
    }
    pattern
}

/// Places every module of a floorplan.
///
/// # Errors
///
/// Propagates [`LayoutError::RegionOverflow`] from any module.
pub fn place_floorplan(fp: &Floorplan, seed: u64) -> Result<Vec<PlacedCell>, LayoutError> {
    let mut all = Vec::with_capacity(fp.total_cells());
    for m in fp.modules() {
        all.extend(place_module(m, seed)?);
    }
    Ok(all)
}

/// Aggregates placed cells into square tiles of side `tile_um`,
/// separately per module, producing the dipole source list for the EM
/// model.
pub fn cluster_cells(cells: &[PlacedCell], tile_um: f64) -> Vec<Cluster> {
    use std::collections::BTreeMap;
    // Weighted-centroid accumulator per (module, tile-x, tile-y): Σx·q,
    // Σy·q, Σq, cell count. A BTreeMap so the accumulator itself can
    // never leak hash-seed-dependent order into the source list.
    type TileAccum = (f64, f64, f64, usize);
    let tile = tile_um.max(1.0);
    let mut map: BTreeMap<(ModuleKind, i64, i64), TileAccum> = BTreeMap::new();
    for cell in cells {
        let tx = (cell.pos.x / tile).floor() as i64;
        let ty = (cell.pos.y / tile).floor() as i64;
        let q = cell.kind.switching_charge_fc();
        let e = map
            .entry((cell.module, tx, ty))
            .or_insert((0.0, 0.0, 0.0, 0));
        e.0 += cell.pos.x * q;
        e.1 += cell.pos.y * q;
        e.2 += q;
        e.3 += 1;
    }
    let mut clusters: Vec<Cluster> = map
        .into_iter()
        .map(|((module, _, _), (sx, sy, q, n))| Cluster {
            centroid: Point::new(sx / q, sy / q),
            total_charge_fc: q,
            cell_count: n,
            module,
        })
        .collect();
    // Deterministic order: by module (derived `Ord`, i.e. declaration
    // order), then position.
    clusters.sort_by(|a, b| {
        a.module
            .cmp(&b.module)
            .then(a.centroid.x.total_cmp(&b.centroid.x))
            .then(a.centroid.y.total_cmp(&b.centroid.y))
    });
    clusters
}

/// Bounding box of a set of clusters belonging to one module (or all).
pub fn clusters_bbox(clusters: &[Cluster]) -> Option<Rect> {
    let first = clusters.first()?;
    let mut bb = Rect::new(
        first.centroid.x,
        first.centroid.y,
        first.centroid.x,
        first.centroid.y,
    );
    for c in clusters.iter().skip(1) {
        bb = bb.union(&Rect::new(
            c.centroid.x,
            c.centroid.y,
            c.centroid.x,
            c.centroid.y,
        ));
    }
    Some(bb)
}

/// SplitMix64: tiny deterministic RNG for placement jitter (kept local so
/// `psa-layout` needs no RNG dependency at runtime).
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;

    #[test]
    fn places_exact_cell_counts() {
        let fp = Floorplan::date24_test_chip();
        let cells = place_floorplan(&fp, 1).unwrap();
        assert_eq!(cells.len(), fp.total_cells());
        for m in fp.modules() {
            let count = cells.iter().filter(|c| c.module == m.kind).count();
            assert_eq!(count, m.cell_count, "{}", m.kind);
        }
    }

    #[test]
    fn cells_stay_inside_their_regions() {
        let fp = Floorplan::date24_test_chip();
        for m in fp.modules() {
            let cells = place_module(m, 7).unwrap();
            let grown = m.region.inflate(0.5); // jitter allowance
            for c in &cells {
                assert!(
                    grown.contains(c.pos),
                    "{} cell at {} outside {}",
                    m.kind,
                    c.pos,
                    m.region
                );
            }
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let fp = Floorplan::date24_test_chip();
        let a = place_floorplan(&fp, 42).unwrap();
        let b = place_floorplan(&fp, 42).unwrap();
        assert_eq!(a, b);
        let c = place_floorplan(&fp, 43).unwrap();
        assert_ne!(a, c); // jitter differs with seed
    }

    #[test]
    fn overflow_detected() {
        let fp = Floorplan::date24_test_chip();
        let mut tiny = fp.module(ModuleKind::TrojanT3).unwrap().clone();
        tiny.region = Rect::new(0.0, 0.0, 5.0, 5.0);
        assert!(matches!(
            place_module(&tiny, 0),
            Err(LayoutError::RegionOverflow { .. })
        ));
    }

    #[test]
    fn clustering_conserves_cells_and_charge() {
        let fp = Floorplan::date24_test_chip();
        let cells = place_floorplan(&fp, 3).unwrap();
        let clusters = cluster_cells(&cells, 50.0);
        let total_cells: usize = clusters.iter().map(|c| c.cell_count).sum();
        assert_eq!(total_cells, cells.len());
        let total_q_cells: f64 = cells.iter().map(|c| c.kind.switching_charge_fc()).sum();
        let total_q_clusters: f64 = clusters.iter().map(|c| c.total_charge_fc).sum();
        assert!((total_q_cells - total_q_clusters).abs() < 1e-6 * total_q_cells);
    }

    #[test]
    fn clusters_do_not_span_modules() {
        let fp = Floorplan::date24_test_chip();
        let cells = place_floorplan(&fp, 3).unwrap();
        let clusters = cluster_cells(&cells, 200.0);
        // T3 is 50 µm wide: with 200 µm tiles it must still be its own
        // cluster(s).
        assert!(clusters.iter().any(|c| c.module == ModuleKind::TrojanT3));
    }

    #[test]
    fn cluster_centroids_inside_module_bbox() {
        let fp = Floorplan::date24_test_chip();
        let cells = place_floorplan(&fp, 9).unwrap();
        let clusters = cluster_cells(&cells, 64.0);
        for cl in &clusters {
            let m = fp.module(cl.module).unwrap();
            assert!(
                m.region.inflate(1.0).contains(cl.centroid),
                "{} centroid {} outside {}",
                cl.module,
                cl.centroid,
                m.region
            );
        }
    }

    #[test]
    fn smaller_tiles_give_more_clusters() {
        let fp = Floorplan::date24_test_chip();
        let cells = place_floorplan(&fp, 5).unwrap();
        let coarse = cluster_cells(&cells, 200.0).len();
        let fine = cluster_cells(&cells, 25.0).len();
        assert!(fine > coarse);
    }

    #[test]
    fn cluster_order_is_pinned() {
        // The cluster list feeds the coupling matrix, so its order is a
        // determinism contract: modules in declaration (derived-Ord)
        // order, then centroid x, then centroid y — and byte-identical
        // across calls.
        let fp = Floorplan::date24_test_chip();
        let cells = place_floorplan(&fp, 11).unwrap();
        let clusters = cluster_cells(&cells, 64.0);
        let again = cluster_cells(&cells, 64.0);
        assert_eq!(clusters, again);
        for w in clusters.windows(2) {
            let key = |c: &Cluster| {
                (
                    c.module,
                    c.centroid.x.to_bits() as i64,
                    c.centroid.y.to_bits() as i64,
                )
            };
            assert!(key(&w[0]) <= key(&w[1]), "clusters out of order: {w:?}");
        }
        // Declaration order puts the AES core first and the Trojans
        // after the infrastructure modules.
        assert_eq!(clusters[0].module, ModuleKind::AesCore);
        let first_trojan = clusters
            .iter()
            .position(|c| c.module.is_trojan())
            .expect("test chip has Trojan clusters");
        assert!(clusters[first_trojan..]
            .iter()
            .all(|c| c.module.is_trojan()));
    }

    #[test]
    fn clusters_bbox_covers_centroids() {
        let fp = Floorplan::date24_test_chip();
        let cells = place_floorplan(&fp, 5).unwrap();
        let clusters = cluster_cells(&cells, 100.0);
        let bb = clusters_bbox(&clusters).unwrap();
        for c in &clusters {
            assert!(bb.contains(c.centroid));
        }
        assert!(clusters_bbox(&[]).is_none());
    }
}
