//! QFN package IO pin assignment (paper Fig 2).
//!
//! The test chip uses a 6 mm × 6 mm QFN with 8 IO pins per side. The
//! right side carries the four differential PSA output channels
//! (`Sensor1±` … `Sensor4±`); the bottom carries power and the 4-bit
//! `PSA_sel` sensor-select bus; the left and top carry UART, clock,
//! reset, and the Trojan enable/observation pins used in the experiments.

use std::fmt;

/// Which side of the QFN package a pin is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinSide {
    /// Left edge (pins 1–8, bottom to top).
    Left,
    /// Top edge (pins 9–16, left to right).
    Top,
    /// Right edge (pins 17–24, top to bottom).
    Right,
    /// Bottom edge (pins 25–32, right to left).
    Bottom,
}

impl fmt::Display for PinSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PinSide::Left => "left",
            PinSide::Top => "top",
            PinSide::Right => "right",
            PinSide::Bottom => "bottom",
        };
        f.write_str(s)
    }
}

/// One package pin.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pin {
    /// 1-based package pin number (1–32).
    pub number: u8,
    /// Side of the package.
    pub side: PinSide,
    /// Signal name as in Fig 2.
    pub name: String,
}

/// The full test-chip pinout.
///
/// # Example
///
/// ```
/// use psa_layout::pins::Pinout;
/// let pinout = Pinout::date24_test_chip();
/// assert_eq!(pinout.pins().len(), 32);
/// // The PSA's differential outputs occupy the whole right side.
/// assert_eq!(pinout.find("Sensor1+").unwrap().side, psa_layout::pins::PinSide::Right);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pinout {
    pins: Vec<Pin>,
}

impl Pinout {
    /// Builds the Fig 2 pin assignment (8 pins per side, 32 total).
    pub fn date24_test_chip() -> Self {
        let left = [
            "VDD", "en_T2", "inv_out", "load_out", "en_T3", "dy_out", "en_T4", "VSS",
        ];
        let top = [
            "en_T1", "am_out", "CLK", "rst_n", "en_UART", "en_LFSR", "Drdy1", "VSS",
        ];
        let right = [
            "Sensor4+", "Sensor4-", "Sensor3+", "Sensor3-", "Sensor2+", "Sensor2-", "Sensor1+",
            "Sensor1-",
        ];
        let bottom = [
            "VDD", "VSS", "UART_in", "UART_out", "PSA_sel0", "PSA_sel1", "PSA_sel2", "PSA_sel3",
        ];
        let mut pins = Vec::with_capacity(32);
        let mut number = 1u8;
        for (side, names) in [
            (PinSide::Left, &left),
            (PinSide::Top, &top),
            (PinSide::Right, &right),
            (PinSide::Bottom, &bottom),
        ] {
            for name in names.iter() {
                pins.push(Pin {
                    number,
                    side,
                    name: (*name).to_string(),
                });
                number += 1;
            }
        }
        Pinout { pins }
    }

    /// All pins in package order.
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// Finds a pin by exact signal name (first match for shared rails).
    pub fn find(&self, name: &str) -> Option<&Pin> {
        self.pins.iter().find(|p| p.name == name)
    }

    /// All pins on one side, in package order.
    pub fn side(&self, side: PinSide) -> Vec<&Pin> {
        self.pins.iter().filter(|p| p.side == side).collect()
    }

    /// The 4-bit sensor-select bus, LSB first.
    pub fn psa_sel_bus(&self) -> Vec<&Pin> {
        (0..4)
            .filter_map(|i| self.find(&format!("PSA_sel{i}")))
            .collect()
    }

    /// The differential sensor channel pins as `(positive, negative)`
    /// pairs, for channels 1–4.
    pub fn sensor_channels(&self) -> Vec<(&Pin, &Pin)> {
        (1..=4)
            .filter_map(|i| {
                let p = self.find(&format!("Sensor{i}+"))?;
                let n = self.find(&format!("Sensor{i}-"))?;
                Some((p, n))
            })
            .collect()
    }
}

impl Default for Pinout {
    fn default() -> Self {
        Pinout::date24_test_chip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_two_pins_eight_per_side() {
        let pinout = Pinout::date24_test_chip();
        assert_eq!(pinout.pins().len(), 32);
        for side in [PinSide::Left, PinSide::Top, PinSide::Right, PinSide::Bottom] {
            assert_eq!(pinout.side(side).len(), 8, "{side}");
        }
    }

    #[test]
    fn pin_numbers_sequential() {
        let pinout = Pinout::date24_test_chip();
        for (i, p) in pinout.pins().iter().enumerate() {
            assert_eq!(p.number as usize, i + 1);
        }
    }

    #[test]
    fn sensor_channels_on_right_side() {
        let pinout = Pinout::date24_test_chip();
        let ch = pinout.sensor_channels();
        assert_eq!(ch.len(), 4);
        for (p, n) in ch {
            assert_eq!(p.side, PinSide::Right);
            assert_eq!(n.side, PinSide::Right);
        }
    }

    #[test]
    fn psa_sel_bus_on_bottom() {
        let pinout = Pinout::date24_test_chip();
        let bus = pinout.psa_sel_bus();
        assert_eq!(bus.len(), 4);
        assert!(bus.iter().all(|p| p.side == PinSide::Bottom));
    }

    #[test]
    fn trojan_enables_present() {
        let pinout = Pinout::date24_test_chip();
        for name in ["en_T1", "en_T2", "en_T3", "en_T4"] {
            assert!(pinout.find(name).is_some(), "{name} missing");
        }
        assert!(pinout.find("no_such_pin").is_none());
    }

    #[test]
    fn clock_and_reset_on_top() {
        let pinout = Pinout::default();
        assert_eq!(pinout.find("CLK").unwrap().side, PinSide::Top);
        assert_eq!(pinout.find("rst_n").unwrap().side, PinSide::Top);
    }
}
