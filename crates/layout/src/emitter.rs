//! Synthetic-emitter placement: sites at arbitrary floorplan
//! coordinates and the parametric sweep grids of the localization atlas.
//!
//! The evaluation chip fixes its Trojans at five sites; an
//! [`EmitterSite`] instead names any point on the die (with a small
//! square extent standing in for the payload's placed footprint), so
//! localization accuracy can be measured as a function of *where* the
//! emitter sits. [`sweep_grid`] enumerates the regular placement grids
//! the atlas campaigns fan out over.

use crate::die::Die;
use crate::error::LayoutError;
use crate::geom::{Point, Rect};

/// A synthetic emitter's placement: centre plus square extent.
///
/// # Example
///
/// ```
/// use psa_layout::emitter::EmitterSite;
/// use psa_layout::Point;
/// let site = EmitterSite::new(Point::new(500.0, 500.0), 40.0);
/// assert_eq!(site.dipole_points(2).len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmitterSite {
    /// Site centre on the die, µm.
    pub center: Point,
    /// Side length of the square payload footprint, µm (0 collapses the
    /// site to a single point dipole).
    pub extent_um: f64,
}

impl EmitterSite {
    /// A site centred at `center` with a square footprint of side
    /// `extent_um`.
    pub fn new(center: Point, extent_um: f64) -> Self {
        EmitterSite {
            center,
            extent_um: extent_um.max(0.0),
        }
    }

    /// The site's footprint rectangle (a degenerate point for zero
    /// extent).
    pub fn footprint(&self) -> Rect {
        let h = self.extent_um / 2.0;
        Rect::new(
            self.center.x - h,
            self.center.y - h,
            self.center.x + h,
            self.center.y + h,
        )
    }

    /// Checks the whole footprint lies on the die.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::OffDie`] when any footprint corner falls
    /// outside the die outline.
    pub fn validate_on(&self, die: &Die) -> Result<(), LayoutError> {
        let outline = die.outline();
        let fp = self.footprint();
        if outline.contains(fp.min()) && outline.contains(fp.max()) {
            Ok(())
        } else {
            Err(LayoutError::OffDie {
                x_um: self.center.x,
                y_um: self.center.y,
            })
        }
    }

    /// Whether this site's footprint rectangle touches or overlaps
    /// `other`'s (boundary contact counts as overlap — two placed
    /// payloads cannot share cells).
    pub fn overlaps(&self, other: &EmitterSite) -> bool {
        let a = self.footprint();
        let b = other.footprint();
        a.min().x <= b.max().x
            && b.min().x <= a.max().x
            && a.min().y <= b.max().y
            && b.min().y <= a.max().y
    }

    /// Dipole sample points covering the footprint: a `per_side` ×
    /// `per_side` grid of tile centres (a single centre point for
    /// `per_side <= 1` or zero extent). The EM side averages unit-moment
    /// dipoles at these points, smoothing the near field the way a
    /// placed payload's cell cluster would.
    pub fn dipole_points(&self, per_side: usize) -> Vec<Point> {
        if per_side <= 1 || self.extent_um == 0.0 {
            return vec![self.center];
        }
        let n = per_side;
        let fp = self.footprint();
        let step = self.extent_um / n as f64;
        let mut pts = Vec::with_capacity(n * n);
        for iy in 0..n {
            for ix in 0..n {
                pts.push(Point::new(
                    fp.min().x + (ix as f64 + 0.5) * step,
                    fp.min().y + (iy as f64 + 0.5) * step,
                ));
            }
        }
        pts
    }
}

/// Validates that every pair of sites in a placement tuple keeps at
/// least `min_separation_um` centre-to-centre distance and that no two
/// footprints overlap — the placement-tuple analogue of
/// [`EmitterSite::validate_on`].
///
/// Joint localization resolves concurrent emitters by their distinct
/// per-sensor coupling signatures; two payloads placed on top of each
/// other are physically one emitter, so campaigns reject such tuples up
/// front instead of scoring an unresolvable placement.
///
/// # Errors
///
/// Returns [`LayoutError::SitesTooClose`] naming the first offending
/// pair (in tuple order) whose centres sit closer than
/// `min_separation_um` or whose footprints touch or overlap.
pub fn validate_separation(
    sites: &[EmitterSite],
    min_separation_um: f64,
) -> Result<(), LayoutError> {
    for (i, a) in sites.iter().enumerate() {
        for b in sites.iter().skip(i + 1) {
            let separation_um = a.center.distance_to(b.center);
            if separation_um < min_separation_um || a.overlaps(b) {
                return Err(LayoutError::SitesTooClose {
                    x1_um: a.center.x,
                    y1_um: a.center.y,
                    x2_um: b.center.x,
                    y2_um: b.center.y,
                    separation_um,
                });
            }
        }
    }
    Ok(())
}

/// A regular `nx` × `ny` grid of emitter sites across the die, inset by
/// `margin_um` from each edge — the atlas's standard placement sweep.
/// Sites are returned row-major from the lower-left corner
/// (deterministic submission order for the campaign engine).
pub fn sweep_grid(
    die: &Die,
    nx: usize,
    ny: usize,
    margin_um: f64,
    extent_um: f64,
) -> Vec<EmitterSite> {
    let outline = die.outline();
    let x0 = outline.min().x + margin_um;
    let y0 = outline.min().y + margin_um;
    let w = (outline.width() - 2.0 * margin_um).max(0.0);
    let h = (outline.height() - 2.0 * margin_um).max(0.0);
    let mut sites = Vec::with_capacity(nx * ny);
    for iy in 0..ny {
        for ix in 0..nx {
            let fx = if nx > 1 {
                ix as f64 / (nx - 1) as f64
            } else {
                0.5
            };
            let fy = if ny > 1 {
                iy as f64 / (ny - 1) as f64
            } else {
                0.5
            };
            sites.push(EmitterSite::new(
                Point::new(x0 + fx * w, y0 + fy * h),
                extent_um,
            ));
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_and_validation() {
        let die = Die::tsmc65_1mm();
        let ok = EmitterSite::new(Point::new(500.0, 500.0), 40.0);
        assert!(ok.validate_on(&die).is_ok());
        assert_eq!(ok.footprint(), Rect::new(480.0, 480.0, 520.0, 520.0));

        // Centre on-die but footprint spilling over the edge is off-die.
        let edge = EmitterSite::new(Point::new(5.0, 500.0), 40.0);
        assert!(matches!(
            edge.validate_on(&die),
            Err(LayoutError::OffDie { .. })
        ));
        // Centre itself outside.
        let outside = EmitterSite::new(Point::new(-10.0, 500.0), 0.0);
        assert!(outside.validate_on(&die).is_err());
    }

    #[test]
    fn dipole_points_cover_the_footprint() {
        let site = EmitterSite::new(Point::new(100.0, 200.0), 40.0);
        let pts = site.dipole_points(2);
        assert_eq!(pts.len(), 4);
        let fp = site.footprint();
        for p in &pts {
            assert!(fp.contains(*p), "{p} outside {fp}");
        }
        // Centroid of the grid is the site centre.
        let cx = pts.iter().map(|p| p.x).sum::<f64>() / pts.len() as f64;
        let cy = pts.iter().map(|p| p.y).sum::<f64>() / pts.len() as f64;
        assert!((cx - 100.0).abs() < 1e-9 && (cy - 200.0).abs() < 1e-9);
        // Degenerate requests collapse to the centre point.
        assert_eq!(site.dipole_points(0), vec![site.center]);
        assert_eq!(
            EmitterSite::new(Point::new(1.0, 2.0), 0.0).dipole_points(3),
            vec![Point::new(1.0, 2.0)]
        );
    }

    #[test]
    fn overlap_and_separation_validation() {
        let a = EmitterSite::new(Point::new(500.0, 500.0), 40.0);
        let apart = EmitterSite::new(Point::new(700.0, 500.0), 40.0);
        let touching = EmitterSite::new(Point::new(540.0, 500.0), 40.0);
        let inside = EmitterSite::new(Point::new(510.0, 510.0), 40.0);
        assert!(!a.overlaps(&apart));
        assert!(a.overlaps(&touching)); // boundary contact counts
        assert!(a.overlaps(&inside));
        assert!(inside.overlaps(&a)); // symmetric

        // Far-apart tuple passes; empty and singleton tuples trivially pass.
        assert!(validate_separation(&[a, apart], 100.0).is_ok());
        assert!(validate_separation(&[], 100.0).is_ok());
        assert!(validate_separation(&[a], 100.0).is_ok());

        // Centre distance below the minimum is rejected with the pair named.
        let err = validate_separation(&[a, apart], 250.0).unwrap_err();
        match err {
            LayoutError::SitesTooClose {
                x1_um,
                x2_um,
                separation_um,
                ..
            } => {
                assert_eq!(x1_um, 500.0);
                assert_eq!(x2_um, 700.0);
                assert_eq!(separation_um, 200.0);
            }
            other => panic!("unexpected error {other:?}"),
        }

        // Overlapping footprints are rejected even when the centre
        // separation clears the minimum.
        assert!(matches!(
            validate_separation(&[a, touching], 10.0),
            Err(LayoutError::SitesTooClose { .. })
        ));

        // First offending pair in tuple order is reported.
        let third = EmitterSite::new(Point::new(505.0, 500.0), 0.0);
        match validate_separation(&[a, apart, third], 100.0).unwrap_err() {
            LayoutError::SitesTooClose { x2_um, .. } => assert_eq!(x2_um, 505.0),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn sweep_grid_shape_and_bounds() {
        let die = Die::tsmc65_1mm();
        let sites = sweep_grid(&die, 6, 6, 60.0, 40.0);
        assert_eq!(sites.len(), 36);
        for s in &sites {
            assert!(s.validate_on(&die).is_ok(), "site {} off-die", s.center);
        }
        // Row-major from lower-left: first site at the margin corner.
        assert_eq!(sites[0].center, Point::new(60.0, 60.0));
        assert_eq!(sites[5].center, Point::new(940.0, 60.0));
        assert_eq!(sites[35].center, Point::new(940.0, 940.0));
        // A 1×1 grid sits at the die centre.
        let one = sweep_grid(&die, 1, 1, 60.0, 0.0);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].center, Point::new(500.0, 500.0));
    }
}
