//! Error type for layout operations.

use std::error::Error;
use std::fmt;

/// Errors produced by layout construction and queries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LayoutError {
    /// A rectangle was constructed with non-positive extent.
    DegenerateRect {
        /// Width that was requested (µm).
        width_um: f64,
        /// Height that was requested (µm).
        height_um: f64,
    },
    /// A polygon needs at least three vertices.
    TooFewVertices {
        /// Number of vertices supplied.
        got: usize,
    },
    /// A module or layer lookup failed.
    NotFound {
        /// What was looked up.
        what: &'static str,
    },
    /// A placement request did not fit its region.
    RegionOverflow {
        /// Cells requested.
        requested: usize,
        /// Cells that fit.
        capacity: usize,
    },
    /// An emitter site (centre plus extent) falls outside the die.
    OffDie {
        /// Requested site centre x, µm.
        x_um: f64,
        /// Requested site centre y, µm.
        y_um: f64,
    },
    /// Two emitter sites in one placement tuple overlap or sit closer
    /// than the requested minimum separation.
    SitesTooClose {
        /// First site centre x, µm.
        x1_um: f64,
        /// First site centre y, µm.
        y1_um: f64,
        /// Second site centre x, µm.
        x2_um: f64,
        /// Second site centre y, µm.
        y2_um: f64,
        /// Centre-to-centre separation of the offending pair, µm.
        separation_um: f64,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::DegenerateRect {
                width_um,
                height_um,
            } => {
                write!(f, "degenerate rectangle {width_um} x {height_um} um")
            }
            LayoutError::TooFewVertices { got } => {
                write!(f, "polygon needs at least 3 vertices, got {got}")
            }
            LayoutError::NotFound { what } => write!(f, "{what} not found"),
            LayoutError::RegionOverflow {
                requested,
                capacity,
            } => write!(
                f,
                "placement overflow: {requested} cells requested, {capacity} fit"
            ),
            LayoutError::OffDie { x_um, y_um } => {
                write!(
                    f,
                    "emitter site at ({x_um}, {y_um}) um falls outside the die"
                )
            }
            LayoutError::SitesTooClose {
                x1_um,
                y1_um,
                x2_um,
                y2_um,
                separation_um,
            } => write!(
                f,
                "emitter sites at ({x1_um}, {y1_um}) and ({x2_um}, {y2_um}) um \
                 are only {separation_um} um apart"
            ),
        }
    }
}

impl Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        for e in [
            LayoutError::DegenerateRect {
                width_um: 0.0,
                height_um: 1.0,
            },
            LayoutError::TooFewVertices { got: 2 },
            LayoutError::NotFound { what: "module" },
            LayoutError::RegionOverflow {
                requested: 10,
                capacity: 5,
            },
            LayoutError::OffDie {
                x_um: -3.0,
                y_um: 40.0,
            },
            LayoutError::SitesTooClose {
                x1_um: 100.0,
                y1_um: 100.0,
                x2_um: 110.0,
                y2_um: 100.0,
                separation_um: 10.0,
            },
        ] {
            assert!(!e.to_string().is_empty());
            assert!(!e.to_string().ends_with('.'));
        }
    }
}
