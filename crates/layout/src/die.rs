//! Die outline and metal stack.
//!
//! The vertical geometry matters to the EM model: switching currents flow
//! in the device layer near the substrate surface, while the PSA coils sit
//! on the two *top* metals (M7/M8 in the paper's TSMC 65 nm stack), a few
//! microns above. That standoff `h` is what bounds the flux a matched
//! small loop can collect (`Φ` peaks for loop radius ≈ h·√2) and is tiny
//! compared to the millimetre-scale standoff of an external probe.

use crate::geom::Rect;

/// One metal layer of the stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetalLayer {
    /// 1-based index (M1 = 1 … M8 = 8).
    pub index: u8,
    /// Height of the layer's mid-plane above the device layer, µm.
    pub z_um: f64,
    /// Layer thickness, µm (top metals are the thick ones).
    pub thickness_um: f64,
    /// Sheet resistance, mΩ/□ (thick top metals are low-resistance).
    pub sheet_resistance_mohm_sq: f64,
}

/// The die: outline plus metal stack.
///
/// # Example
///
/// ```
/// use psa_layout::die::Die;
/// let die = Die::tsmc65_1mm();
/// assert_eq!(die.metal_layers().len(), 8);
/// // PSA metals are the two topmost.
/// assert_eq!(die.psa_layers(), (7, 8));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Die {
    outline: Rect,
    layers: Vec<MetalLayer>,
}

impl Die {
    /// The paper's test chip: 1 mm × 1 mm in a TSMC 65 nm-like 8-metal
    /// stack. Layer heights/thicknesses are representative textbook
    /// values for a 65 nm 8-metal process (exact foundry numbers are
    /// proprietary); only their order of magnitude matters to the flux
    /// model.
    pub fn tsmc65_1mm() -> Self {
        let mut layers = Vec::with_capacity(8);
        // Thin lower metals ~0.2 µm thick spaced ~0.4 µm apart, two thick
        // top metals (the "RDL-class" layers the PSA uses).
        let mut z = 0.6; // M1 mid-plane above the device layer
        for i in 1..=6u8 {
            layers.push(MetalLayer {
                index: i,
                z_um: z,
                thickness_um: 0.22,
                sheet_resistance_mohm_sq: 120.0,
            });
            z += 0.55;
        }
        layers.push(MetalLayer {
            index: 7,
            z_um: 4.2,
            thickness_um: 0.9,
            sheet_resistance_mohm_sq: 22.0,
        });
        layers.push(MetalLayer {
            index: 8,
            z_um: 5.4,
            thickness_um: 3.3,
            sheet_resistance_mohm_sq: 7.0,
        });
        Die {
            outline: Rect::new(0.0, 0.0, 1000.0, 1000.0),
            layers,
        }
    }

    /// Die outline in µm.
    pub fn outline(&self) -> Rect {
        self.outline
    }

    /// Die width, µm.
    pub fn width_um(&self) -> f64 {
        self.outline.width()
    }

    /// Die height, µm.
    pub fn height_um(&self) -> f64 {
        self.outline.height()
    }

    /// All metal layers, bottom-up.
    pub fn metal_layers(&self) -> &[MetalLayer] {
        &self.layers
    }

    /// Looks up a metal layer by 1-based index.
    pub fn metal(&self, index: u8) -> Option<&MetalLayer> {
        self.layers.iter().find(|l| l.index == index)
    }

    /// Indices of the two layers carrying the PSA (the topmost pair).
    pub fn psa_layers(&self) -> (u8, u8) {
        let n = self.layers.len();
        (self.layers[n - 2].index, self.layers[n - 1].index)
    }

    /// Height of the PSA sensing plane above the device layer, µm: the
    /// midpoint of the two top metals. This is the `h` of the flux model.
    pub fn psa_plane_z_um(&self) -> f64 {
        let (a, b) = self.psa_layers();
        let za = self.metal(a).expect("layer exists").z_um;
        let zb = self.metal(b).expect("layer exists").z_um;
        (za + zb) / 2.0
    }
}

impl Default for Die {
    fn default() -> Self {
        Die::tsmc65_1mm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_is_eight_metals_ascending() {
        let die = Die::tsmc65_1mm();
        assert_eq!(die.metal_layers().len(), 8);
        for w in die.metal_layers().windows(2) {
            assert!(w[1].z_um > w[0].z_um, "stack must ascend");
            assert!(w[1].index == w[0].index + 1);
        }
    }

    #[test]
    fn top_metals_are_thick_and_low_resistance() {
        let die = Die::tsmc65_1mm();
        let m1 = die.metal(1).unwrap();
        let m8 = die.metal(8).unwrap();
        assert!(m8.thickness_um > 3.0 * m1.thickness_um);
        assert!(m8.sheet_resistance_mohm_sq < m1.sheet_resistance_mohm_sq / 5.0);
    }

    #[test]
    fn psa_plane_is_microns_above_devices() {
        let die = Die::tsmc65_1mm();
        assert_eq!(die.psa_layers(), (7, 8));
        let h = die.psa_plane_z_um();
        assert!((4.0..7.0).contains(&h), "psa plane at {h} um");
    }

    #[test]
    fn outline_is_one_millimetre() {
        let die = Die::tsmc65_1mm();
        assert_eq!(die.width_um(), 1000.0);
        assert_eq!(die.height_um(), 1000.0);
        assert_eq!(die.outline().area(), 1.0e6);
    }

    #[test]
    fn metal_lookup() {
        let die = Die::default();
        assert!(die.metal(3).is_some());
        assert!(die.metal(9).is_none());
        assert!(die.metal(0).is_none());
    }
}
