//! The test chip's floorplan (paper Fig 2).
//!
//! A 1 mm × 1 mm die with an AES-128-LUT core, a UART FIFO, the PSA
//! control decoder, and four hardware Trojans whose cell counts come from
//! Table II. The Trojan payload/trigger regions sit in the die's centre
//! region so that — with the 16-sensor preset of `psa-array` — sensor 10
//! covers all four Trojans while sensor 0 covers an empty corner, exactly
//! the contrast exploited in Fig 4.
//!
//! **Numbering note.** Fig 2 of the paper labels its sensors in a
//! scrambled order (an artifact of the figure); this reproduction uses
//! plain row-major numbering from the die's lower-left corner and places
//! modules so the paper's *spatial claims* hold verbatim: sensor 10 has
//! the best Trojan coverage, sensor 0 sees none, and the main circuit
//! falls under nine of the sixteen sensors.

use crate::die::Die;
use crate::error::LayoutError;
use crate::geom::Rect;
use crate::stdcell::CellMix;
use std::fmt;

/// The modules placed on the test chip.
///
/// `Ord` is derived: declaration order is the canonical module order
/// used wherever clusters, sources, or reports sort by module — a
/// compiler-checked total order instead of an allocating
/// `format!("{:?}", ..)` sort key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum ModuleKind {
    /// The AES-128-LUT main circuit (Morioka/Satoh S-box architecture).
    AesCore,
    /// RS232 UART + FIFO used to stream plaintext/ciphertext.
    UartFifo,
    /// The combinational decoder driving the PSA T-gate controls.
    PsaControl,
    /// T1 — AM radio-carrier Trojan (750 kHz emission, counter trigger).
    TrojanT1,
    /// T2 — key-wire inverter-chain leakage amplifier (plaintext trigger).
    TrojanT2,
    /// T3 — CDMA key-leak Trojan (small; always-on via external enable).
    TrojanT3,
    /// T4 — denial-of-service power hog (always-on via external enable).
    TrojanT4,
}

impl ModuleKind {
    /// All modules of the test chip.
    pub const ALL: [ModuleKind; 7] = [
        ModuleKind::AesCore,
        ModuleKind::UartFifo,
        ModuleKind::PsaControl,
        ModuleKind::TrojanT1,
        ModuleKind::TrojanT2,
        ModuleKind::TrojanT3,
        ModuleKind::TrojanT4,
    ];

    /// `true` for the four Trojans.
    pub fn is_trojan(self) -> bool {
        matches!(
            self,
            ModuleKind::TrojanT1
                | ModuleKind::TrojanT2
                | ModuleKind::TrojanT3
                | ModuleKind::TrojanT4
        )
    }
}

impl fmt::Display for ModuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModuleKind::AesCore => "AES_core",
            ModuleKind::UartFifo => "UART_FIFO",
            ModuleKind::PsaControl => "PSA_control",
            ModuleKind::TrojanT1 => "T1",
            ModuleKind::TrojanT2 => "T2",
            ModuleKind::TrojanT3 => "T3",
            ModuleKind::TrojanT4 => "T4",
        };
        f.write_str(s)
    }
}

/// A placed module: its kind, region, cell count and cell mix.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Which module this is.
    pub kind: ModuleKind,
    /// Placement region on the die, µm.
    pub region: Rect,
    /// Number of standard cells (Table II for the Trojans).
    pub cell_count: usize,
    /// Cell composition, used to derive per-toggle charge.
    pub mix: CellMix,
}

/// The whole floorplan: die plus placed modules.
///
/// # Example
///
/// ```
/// use psa_layout::floorplan::{Floorplan, ModuleKind};
/// let fp = Floorplan::date24_test_chip();
/// assert_eq!(fp.total_cells(), 28806); // Table II "Overall"
/// assert!(fp.module(ModuleKind::AesCore).unwrap().region.area() > 1e5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    die: Die,
    modules: Vec<Module>,
}

impl Floorplan {
    /// Builds the DATE'24 test chip floorplan.
    ///
    /// Cell counts follow Table II exactly: 28 806 cells total, of which
    /// T1 = 1881, T2 = 2132, T3 = 329, T4 = 2181. The non-Trojan
    /// remainder is split between the AES core, the UART FIFO, and the
    /// PSA control decoder.
    pub fn date24_test_chip() -> Self {
        let die = Die::tsmc65_1mm();
        // Table II.
        let t1 = 1881;
        let t2 = 2132;
        let t3 = 329;
        let t4 = 2181;
        let uart = 800;
        let psa_ctrl = 283;
        let aes = 28806 - t1 - t2 - t3 - t4 - uart - psa_ctrl;

        let modules = vec![
            // A compact, realistically-utilized core block (≈ 90 %
            // placement utilization) centred under sensor 10, as in the
            // silicon floorplan where the green sensor box covers "most
            // HT circuits" and the core.
            Module {
                kind: ModuleKind::AesCore,
                region: Rect::new(420.0, 420.0, 750.0, 750.0),
                cell_count: aes,
                mix: CellMix::aes_datapath(),
            },
            Module {
                kind: ModuleKind::UartFifo,
                region: Rect::new(30.0, 550.0, 180.0, 850.0),
                cell_count: uart,
                mix: CellMix::control_logic(),
            },
            Module {
                kind: ModuleKind::PsaControl,
                region: Rect::new(30.0, 20.0, 400.0, 80.0),
                cell_count: psa_ctrl,
                mix: CellMix::control_logic(),
            },
            // All four Trojans are embedded in the core block, clustered
            // around sensor 10's footprint centre (~614, 614) so that
            // sensor 10 couples to them more strongly than any
            // overlapping neighbour — the paper's "sensor 10 offers the
            // most coverage of both Trojan payloads and triggers".
            Module {
                kind: ModuleKind::TrojanT1,
                region: Rect::new(520.0, 620.0, 610.0, 710.0),
                cell_count: t1,
                mix: CellMix::control_logic(),
            },
            Module {
                kind: ModuleKind::TrojanT2,
                region: Rect::new(620.0, 520.0, 710.0, 610.0),
                cell_count: t2,
                mix: CellMix::inverter_chain(),
            },
            Module {
                kind: ModuleKind::TrojanT3,
                region: Rect::new(620.0, 620.0, 670.0, 670.0),
                cell_count: t3,
                mix: CellMix::control_logic(),
            },
            Module {
                kind: ModuleKind::TrojanT4,
                region: Rect::new(520.0, 520.0, 610.0, 610.0),
                cell_count: t4,
                mix: CellMix::control_logic(),
            },
        ];
        Floorplan { die, modules }
    }

    /// The die.
    pub fn die(&self) -> &Die {
        &self.die
    }

    /// All placed modules.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Looks up one module.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::NotFound`] when the module is not placed.
    pub fn module(&self, kind: ModuleKind) -> Result<&Module, LayoutError> {
        self.modules
            .iter()
            .find(|m| m.kind == kind)
            .ok_or(LayoutError::NotFound { what: "module" })
    }

    /// The four Trojan modules.
    pub fn trojans(&self) -> Vec<&Module> {
        self.modules.iter().filter(|m| m.kind.is_trojan()).collect()
    }

    /// Total standard-cell count (Table II "Overall").
    pub fn total_cells(&self) -> usize {
        self.modules.iter().map(|m| m.cell_count).sum()
    }

    /// A module's cell-count percentage of the total — the second row of
    /// Table II.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::NotFound`] when the module is not placed.
    pub fn cell_percentage(&self, kind: ModuleKind) -> Result<f64, LayoutError> {
        let m = self.module(kind)?;
        Ok(100.0 * m.cell_count as f64 / self.total_cells() as f64)
    }

    /// Regenerates Table II as `(label, cell count, percentage)` rows:
    /// Overall first, then T1–T4.
    pub fn gate_count_table(&self) -> Vec<(String, usize, f64)> {
        let mut rows = vec![("Overall".to_string(), self.total_cells(), 100.0)];
        for kind in [
            ModuleKind::TrojanT1,
            ModuleKind::TrojanT2,
            ModuleKind::TrojanT3,
            ModuleKind::TrojanT4,
        ] {
            if let Ok(m) = self.module(kind) {
                rows.push((
                    kind.to_string(),
                    m.cell_count,
                    100.0 * m.cell_count as f64 / self.total_cells() as f64,
                ));
            }
        }
        rows
    }

    /// All modules whose regions intersect `area` (used to answer "what
    /// is under this sensor?").
    pub fn modules_under(&self, area: &Rect) -> Vec<&Module> {
        self.modules
            .iter()
            .filter(|m| m.region.intersects(area))
            .collect()
    }
}

impl Default for Floorplan {
    fn default() -> Self {
        Floorplan::date24_test_chip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_counts_match_paper() {
        let fp = Floorplan::date24_test_chip();
        assert_eq!(fp.total_cells(), 28806);
        assert_eq!(fp.module(ModuleKind::TrojanT1).unwrap().cell_count, 1881);
        assert_eq!(fp.module(ModuleKind::TrojanT2).unwrap().cell_count, 2132);
        assert_eq!(fp.module(ModuleKind::TrojanT3).unwrap().cell_count, 329);
        assert_eq!(fp.module(ModuleKind::TrojanT4).unwrap().cell_count, 2181);
    }

    #[test]
    fn table2_percentages_match_paper() {
        let fp = Floorplan::date24_test_chip();
        // Paper: 6.52 / 7.40 / 1.14 / 7.57 (%).
        assert!((fp.cell_percentage(ModuleKind::TrojanT1).unwrap() - 6.52).abs() < 0.02);
        assert!((fp.cell_percentage(ModuleKind::TrojanT2).unwrap() - 7.40).abs() < 0.02);
        assert!((fp.cell_percentage(ModuleKind::TrojanT3).unwrap() - 1.14).abs() < 0.02);
        assert!((fp.cell_percentage(ModuleKind::TrojanT4).unwrap() - 7.57).abs() < 0.02);
    }

    #[test]
    fn gate_count_table_rows() {
        let fp = Floorplan::date24_test_chip();
        let rows = fp.gate_count_table();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].0, "Overall");
        assert_eq!(rows[0].1, 28806);
        assert_eq!(rows[3].0, "T3");
        assert_eq!(rows[3].1, 329);
    }

    #[test]
    fn modules_fit_on_die() {
        let fp = Floorplan::date24_test_chip();
        let outline = fp.die().outline();
        for m in fp.modules() {
            assert!(outline.contains(m.region.min()), "{} off-die", m.kind);
            assert!(outline.contains(m.region.max()), "{} off-die", m.kind);
        }
    }

    #[test]
    fn trojans_dont_overlap_each_other() {
        let fp = Floorplan::date24_test_chip();
        let trojans = fp.trojans();
        assert_eq!(trojans.len(), 4);
        for i in 0..trojans.len() {
            for j in i + 1..trojans.len() {
                assert!(
                    !trojans[i].region.intersects(&trojans[j].region),
                    "{} overlaps {}",
                    trojans[i].kind,
                    trojans[j].kind
                );
            }
        }
    }

    #[test]
    fn trojans_inside_sensor10_footprint() {
        // Sensor 10 with the 16-sensor preset covers
        // [457.1..800] x [457.1..800] µm (lattice nodes 16..28).
        let sensor10 = Rect::new(457.1, 457.1, 800.0, 800.0);
        let fp = Floorplan::date24_test_chip();
        for t in fp.trojans() {
            assert!(
                sensor10.contains(t.region.min()) && sensor10.contains(t.region.max()),
                "{} outside sensor 10",
                t.kind
            );
        }
    }

    #[test]
    fn corner_under_sensor0_is_empty() {
        // Sensor 0 covers about [0..332]² µm; only PSA control grazes the
        // bottom strip, so keep the main-circuit modules out.
        let sensor0 = Rect::new(0.0, 0.0, 332.3, 332.3);
        let fp = Floorplan::date24_test_chip();
        let under = fp.modules_under(&sensor0);
        assert!(under.iter().all(|m| m.kind == ModuleKind::PsaControl));
    }

    #[test]
    fn trojan_regions_have_room_for_cells() {
        let fp = Floorplan::date24_test_chip();
        for t in fp.trojans() {
            let needed = t.cell_count as f64 * t.mix.mean_area_um2();
            assert!(
                t.region.area() > needed,
                "{}: {} um^2 needed, {} available",
                t.kind,
                needed,
                t.region.area()
            );
        }
    }

    #[test]
    fn module_lookup_and_display() {
        let fp = Floorplan::default();
        assert!(fp.module(ModuleKind::AesCore).is_ok());
        assert_eq!(ModuleKind::TrojanT3.to_string(), "T3");
        assert!(ModuleKind::TrojanT3.is_trojan());
        assert!(!ModuleKind::AesCore.is_trojan());
    }

    #[test]
    fn modules_under_finds_aes_under_center() {
        let fp = Floorplan::date24_test_chip();
        let center = Rect::new(480.0, 480.0, 520.0, 520.0);
        let under = fp.modules_under(&center);
        assert!(under.iter().any(|m| m.kind == ModuleKind::AesCore));
    }
}
