//! Standard-cell kinds and their electrical parameters.
//!
//! The Hamming-distance power model charges each output toggle with a
//! per-cell switching charge `q_sw = C_load · V_dd`. Values here are
//! representative of a 65 nm GP library at 1.0 V — only relative
//! magnitudes matter to the reproduced figures, and they are calibrated
//! once in `psa-core::calib`.

use std::fmt;

/// Standard-cell families used by the test chip and its Trojans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StdCellKind {
    /// Inverter (T2's leakage-amplifier chain is built from these).
    Inv,
    /// Buffer / clock buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR (AES round function is XOR-heavy).
    Xor2,
    /// 2-to-1 multiplexer.
    Mux2,
    /// D flip-flop with reset (state registers, counters).
    Dff,
    /// A LUT-style combinational lookup macro (the AES-128-LUT S-box
    /// tables of Morioka/Satoh used by the paper's main circuit).
    Lut,
}

impl StdCellKind {
    /// All kinds.
    pub const ALL: [StdCellKind; 8] = [
        StdCellKind::Inv,
        StdCellKind::Buf,
        StdCellKind::Nand2,
        StdCellKind::Nor2,
        StdCellKind::Xor2,
        StdCellKind::Mux2,
        StdCellKind::Dff,
        StdCellKind::Lut,
    ];

    /// Cell footprint area in µm² (65 nm-class).
    pub fn area_um2(self) -> f64 {
        match self {
            StdCellKind::Inv => 1.0,
            StdCellKind::Buf => 1.4,
            StdCellKind::Nand2 => 1.4,
            StdCellKind::Nor2 => 1.4,
            StdCellKind::Xor2 => 3.1,
            StdCellKind::Mux2 => 2.9,
            StdCellKind::Dff => 6.1,
            StdCellKind::Lut => 14.0,
        }
    }

    /// Switching charge per output toggle, in femtocoulombs: effective
    /// load capacitance (gate + wire) times a 1.0 V swing.
    pub fn switching_charge_fc(self) -> f64 {
        match self {
            StdCellKind::Inv => 1.6,
            StdCellKind::Buf => 2.4,
            StdCellKind::Nand2 => 2.0,
            StdCellKind::Nor2 => 2.0,
            StdCellKind::Xor2 => 3.4,
            StdCellKind::Mux2 => 3.0,
            StdCellKind::Dff => 5.2,
            StdCellKind::Lut => 9.5,
        }
    }

    /// Static leakage current in nanoamps at nominal corner (only enters
    /// the noise floor).
    pub fn leakage_na(self) -> f64 {
        match self {
            StdCellKind::Inv => 0.8,
            StdCellKind::Buf => 1.2,
            StdCellKind::Nand2 => 1.0,
            StdCellKind::Nor2 => 1.0,
            StdCellKind::Xor2 => 1.9,
            StdCellKind::Mux2 => 1.7,
            StdCellKind::Dff => 3.1,
            StdCellKind::Lut => 6.5,
        }
    }
}

impl fmt::Display for StdCellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StdCellKind::Inv => "INV",
            StdCellKind::Buf => "BUF",
            StdCellKind::Nand2 => "NAND2",
            StdCellKind::Nor2 => "NOR2",
            StdCellKind::Xor2 => "XOR2",
            StdCellKind::Mux2 => "MUX2",
            StdCellKind::Dff => "DFF",
            StdCellKind::Lut => "LUT",
        };
        f.write_str(s)
    }
}

/// A mix of standard cells, as fractions summing to 1, describing a
/// module's composition. Used to derive a module's mean per-toggle charge
/// and area without enumerating every gate.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMix {
    entries: Vec<(StdCellKind, f64)>,
}

impl CellMix {
    /// Builds a mix; fractions are normalized to sum to 1. Entries with
    /// non-positive weight are dropped.
    pub fn new(entries: &[(StdCellKind, f64)]) -> Self {
        let mut kept: Vec<(StdCellKind, f64)> =
            entries.iter().copied().filter(|(_, w)| *w > 0.0).collect();
        let total: f64 = kept.iter().map(|(_, w)| w).sum();
        if total > 0.0 {
            for (_, w) in &mut kept {
                *w /= total;
            }
        }
        CellMix { entries: kept }
    }

    /// A datapath-flavoured mix (XOR/LUT heavy) for the AES core.
    pub fn aes_datapath() -> Self {
        CellMix::new(&[
            (StdCellKind::Xor2, 0.30),
            (StdCellKind::Lut, 0.14),
            (StdCellKind::Nand2, 0.18),
            (StdCellKind::Mux2, 0.12),
            (StdCellKind::Dff, 0.16),
            (StdCellKind::Buf, 0.10),
        ])
    }

    /// A control-flavoured mix (FF and NAND heavy) for UART/decoders.
    pub fn control_logic() -> Self {
        CellMix::new(&[
            (StdCellKind::Dff, 0.30),
            (StdCellKind::Nand2, 0.30),
            (StdCellKind::Nor2, 0.15),
            (StdCellKind::Inv, 0.15),
            (StdCellKind::Buf, 0.10),
        ])
    }

    /// An inverter-chain mix (T2's payload).
    pub fn inverter_chain() -> Self {
        CellMix::new(&[(StdCellKind::Inv, 0.9), (StdCellKind::Buf, 0.1)])
    }

    /// The entries as `(kind, fraction)` pairs.
    pub fn entries(&self) -> &[(StdCellKind, f64)] {
        &self.entries
    }

    /// Weighted mean switching charge per toggle, fC.
    pub fn mean_switching_charge_fc(&self) -> f64 {
        self.entries
            .iter()
            .map(|(k, w)| k.switching_charge_fc() * w)
            .sum()
    }

    /// Weighted mean cell area, µm².
    pub fn mean_area_um2(&self) -> f64 {
        self.entries.iter().map(|(k, w)| k.area_um2() * w).sum()
    }

    /// Weighted mean leakage, nA.
    pub fn mean_leakage_na(&self) -> f64 {
        self.entries.iter().map(|(k, w)| k.leakage_na() * w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_have_positive_parameters() {
        for k in StdCellKind::ALL {
            assert!(k.area_um2() > 0.0);
            assert!(k.switching_charge_fc() > 0.0);
            assert!(k.leakage_na() > 0.0);
        }
    }

    #[test]
    fn dff_bigger_than_inverter() {
        assert!(StdCellKind::Dff.area_um2() > StdCellKind::Inv.area_um2());
        assert!(StdCellKind::Dff.switching_charge_fc() > StdCellKind::Inv.switching_charge_fc());
    }

    #[test]
    fn mix_normalizes() {
        let mix = CellMix::new(&[(StdCellKind::Inv, 2.0), (StdCellKind::Dff, 2.0)]);
        let total: f64 = mix.entries().iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let expected =
            (StdCellKind::Inv.switching_charge_fc() + StdCellKind::Dff.switching_charge_fc()) / 2.0;
        assert!((mix.mean_switching_charge_fc() - expected).abs() < 1e-12);
    }

    #[test]
    fn mix_drops_nonpositive_weights() {
        let mix = CellMix::new(&[
            (StdCellKind::Inv, 1.0),
            (StdCellKind::Dff, 0.0),
            (StdCellKind::Lut, -3.0),
        ]);
        assert_eq!(mix.entries().len(), 1);
    }

    #[test]
    fn preset_mixes_are_sane() {
        for mix in [
            CellMix::aes_datapath(),
            CellMix::control_logic(),
            CellMix::inverter_chain(),
        ] {
            let total: f64 = mix.entries().iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-12);
            assert!(mix.mean_switching_charge_fc() > 0.5);
            assert!(mix.mean_area_um2() > 0.5);
        }
        // The inverter chain has the smallest per-toggle charge of the
        // presets — T2 is many small fast gates.
        assert!(
            CellMix::inverter_chain().mean_switching_charge_fc()
                < CellMix::aes_datapath().mean_switching_charge_fc()
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(StdCellKind::Nand2.to_string(), "NAND2");
        assert_eq!(StdCellKind::Lut.to_string(), "LUT");
    }
}
