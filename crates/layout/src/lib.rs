//! Physical layout substrate for the PSA reproduction.
//!
//! The paper's experiment lives on a fabricated 65 nm test chip (Fig 2):
//! a 1 mm × 1 mm die carrying an AES-128 core, a UART, four hardware
//! Trojans, and the PSA lattice on metal layers M7/M8, packaged in a QFN
//! with 8 IO pins per side. Localization claims only make sense with real
//! geometry, so this crate models:
//!
//! * [`geom`] — points, rectangles and polygons in microns, with the
//!   area/containment/overlap predicates the flux integrator needs.
//! * [`die`] — die outline and metal-stack heights (M1–M8), which set the
//!   vertical standoff between switching cells and sensing coils.
//! * [`stdcell`] — standard-cell kinds with area and switching-charge
//!   parameters (the Hamming-distance power model's per-toggle charge).
//! * [`floorplan`] — the Fig 2 module placement: `AES_core`, `UART_FIFO`,
//!   `PSA_control` and Trojans T1–T4, with the gate counts of Table II.
//! * [`placement`] — deterministic row-based placement of cells into
//!   module regions, and clustering of cells into EM source tiles.
//! * [`emitter`] — synthetic-emitter sites at arbitrary coordinates and
//!   the parametric sweep grids of the localization-accuracy atlas.
//! * [`pins`] — the QFN IO pin assignment of Fig 2.
//!
//! # Example
//!
//! ```
//! use psa_layout::floorplan::{Floorplan, ModuleKind};
//!
//! let fp = Floorplan::date24_test_chip();
//! // Table II: T3 is the small CDMA Trojan, 329 cells.
//! let t3 = fp.module(ModuleKind::TrojanT3).unwrap();
//! assert_eq!(t3.cell_count, 329);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod die;
pub mod emitter;
pub mod error;
pub mod floorplan;
pub mod geom;
pub mod pins;
pub mod placement;
pub mod stdcell;

pub use error::LayoutError;
pub use geom::{Point, Polygon, Rect};
