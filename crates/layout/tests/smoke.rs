//! Crate smoke test: the Fig 2 floorplan constructs with Table II counts.

use psa_layout::floorplan::{Floorplan, ModuleKind};

#[test]
fn floorplan_smoke() {
    let fp = Floorplan::date24_test_chip();
    let t3 = fp.module(ModuleKind::TrojanT3).unwrap();
    assert_eq!(t3.cell_count, 329);
}
