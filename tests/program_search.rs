//! Integration: the SNR-driven programming search — chip-bound
//! detection-SNR scoring of custom programmings, the Custom ≡ Psa
//! score equivalence, and the engine-level invariants: a search's
//! report is identical at any worker count and its winner clears the
//! preset bar.

use psa_repro::array::program::CoilProgram;
use psa_repro::core::acquisition::AcqContext;
use psa_repro::core::chip::{SensorSelect, TestChip};
use psa_repro::core::progsearch::{
    detection_snr_with, eval_scenario_pair, probe_scenario_pair, score_program_with,
    ProgramSearchConfig,
};
use psa_repro::gatesim::trojan::TrojanKind;
use psa_repro::runtime::{Engine, ProgramSearch};
use std::sync::OnceLock;

fn chip() -> &'static TestChip {
    static CHIP: OnceLock<TestChip> = OnceLock::new();
    CHIP.get_or_init(TestChip::date24)
}

/// A reduced evaluation budget: one record per side and short records
/// keep each candidate cheap while the sidebands stay far above the
/// baseline envelope.
fn fast_config() -> ProgramSearchConfig {
    ProgramSearchConfig {
        records_per_eval: 1,
        record_cycles: 1024,
        max_rounds: 1,
        beam_width: 2,
        ..ProgramSearchConfig::default()
    }
}

#[test]
fn detection_snr_separates_covering_from_far_sensor() {
    // The search objective must be physically meaningful: the preset
    // covering the Trojan quarter scores far above the opposite-corner
    // preset, and an active Trojan scores above threshold on the
    // covering sensor.
    let config = fast_config();
    let covering = CoilProgram::preset(10).unwrap();
    let (quiet, active) = eval_scenario_pair(TrojanKind::T1, 7, &covering);
    let mut ctx = AcqContext::new(chip());
    let near = detection_snr_with(
        &mut ctx,
        &quiet,
        &active,
        SensorSelect::Custom(covering),
        &config,
    )
    .expect("covering evaluation runs");
    assert!(
        near.snr_db > config.threshold_db,
        "near snr {}",
        near.snr_db
    );
    assert_eq!(near.records_to_detect, Some(1));

    let far = CoilProgram::preset(3).unwrap();
    let (quiet, active) = eval_scenario_pair(TrojanKind::T1, 7, &far);
    let far_snr = detection_snr_with(
        &mut ctx,
        &quiet,
        &active,
        SensorSelect::Custom(far),
        &config,
    )
    .expect("far evaluation runs");
    assert!(
        near.snr_db > far_snr.snr_db + 6.0,
        "covering {} vs far {}",
        near.snr_db,
        far_snr.snr_db
    );
}

#[test]
fn custom_preset_scores_bitwise_like_psa_selection() {
    // The chip-level Custom(preset-shaped) ≡ Psa(i) equivalence must
    // survive the whole scoring pipeline: same scenarios, same traces,
    // same measured statistic to the bit.
    let config = fast_config();
    let program = CoilProgram::preset(10).unwrap();
    let (quiet, active) = eval_scenario_pair(TrojanKind::T3, 11, &program);
    let mut ctx = AcqContext::new(chip());
    let via_custom = score_program_with(&mut ctx, &quiet, &active, program, &config)
        .expect("custom evaluation runs");
    let via_psa = detection_snr_with(&mut ctx, &quiet, &active, SensorSelect::Psa(10), &config)
        .expect("preset evaluation runs");
    assert_eq!(via_custom.snr.snr_db.to_bits(), via_psa.snr_db.to_bits());
    assert_eq!(via_custom.snr.records_to_detect, via_psa.records_to_detect);
}

#[test]
fn invalid_custom_programming_errors_cleanly() {
    let config = fast_config();
    let off = CoilProgram::new(30, 30, 40, 40, 2).unwrap();
    let (quiet, active) = eval_scenario_pair(TrojanKind::T1, 3, &off);
    let mut ctx = AcqContext::new(chip());
    assert!(score_program_with(&mut ctx, &quiet, &active, off, &config).is_err());
}

#[test]
fn search_is_worker_count_invariant_and_beats_presets() {
    // The headline invariants in one (expensive) pass: the full search
    // report — preset scores, round trajectory, winner — is identical
    // at 1 and 2 workers, and the searched winner is at least as good
    // as every preset under the objective.
    let config = fast_config();
    let serial = ProgramSearch::new(chip(), Engine::new(1), config.clone())
        .expect("search builds")
        .search(TrojanKind::T3, 0x5EA6)
        .expect("serial search runs");
    let parallel = ProgramSearch::new(chip(), Engine::new(2), config.clone())
        .expect("search builds")
        .search(TrojanKind::T3, 0x5EA6)
        .expect("parallel search runs");
    assert_eq!(serial, parallel);

    assert_eq!(serial.presets.len(), 16);
    let best_preset = serial.best_preset(&config);
    assert!(
        serial.best.snr.snr_db >= best_preset.snr.snr_db,
        "winner {} vs preset {}",
        serial.best.snr.snr_db,
        best_preset.snr.snr_db
    );
    assert!(serial.improvement_db(&config) >= 0.0);
    // The search actually explored beyond the 16 seeds.
    assert!(serial.evaluated > 16);
    assert_eq!(serial.rounds.len(), 1);
}

#[test]
fn probe_baselines_score_under_the_same_statistic() {
    let config = fast_config();
    let search = ProgramSearch::new(chip(), Engine::new(2), config.clone()).expect("search builds");
    let probes = search
        .probe_baselines(TrojanKind::T1, 0x5EA6)
        .expect("probe baselines run");
    assert_eq!(probes.len(), 3);
    assert_eq!(probes[0].0, SensorSelect::SingleCoil);
    // The probe pair is independent of any programming but still uses
    // the quiet/active seed separation.
    let (quiet, active) = probe_scenario_pair(TrojanKind::T1, 0x5EA6);
    assert!(quiet.trojan.is_none());
    assert_eq!(active.trojan, Some(TrojanKind::T1));
    assert_ne!(quiet.seed, active.seed);
    // Same inputs, same statistic: re-measuring one probe serially
    // reproduces the campaign's value bit for bit.
    let mut ctx = AcqContext::new(chip());
    let again = detection_snr_with(&mut ctx, &quiet, &active, SensorSelect::SingleCoil, &config)
        .expect("probe evaluation runs");
    assert_eq!(again.snr_db.to_bits(), probes[0].1.snr_db.to_bits());
}
