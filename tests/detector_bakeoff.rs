//! Scored-detector API and bake-off campaign integration: the
//! score/decide split must reproduce the historical verdicts bit for
//! bit, and the swept ROC report must be byte-identical at any worker
//! count.

use psa_repro::core::acquisition::AcqContext;
use psa_repro::core::chip::TestChip;
use psa_repro::core::detector::{
    BackscatterConfig, BackscatterDetector, CrossDomainDetector, Detector, EuclideanDetector,
    ScoredDetector, SpectralKurtosisDetector,
};
use psa_repro::core::scenario::Scenario;
use psa_repro::gatesim::trojan::TrojanKind;
use psa_repro::runtime::{Bakeoff, BakeoffConfig, Engine};
use std::sync::OnceLock;

fn chip() -> &'static TestChip {
    static CHIP: OnceLock<TestChip> = OnceLock::new();
    CHIP.get_or_init(TestChip::date24)
}

/// A cheap roster for campaign-shape tests (full budgets are the bench
/// binary's job).
fn cheap_roster() -> (EuclideanDetector, BackscatterDetector) {
    (
        EuclideanDetector::single_coil(3),
        BackscatterDetector::with_config(BackscatterConfig {
            traces_per_side: 4,
            ..BackscatterConfig::default()
        }),
    )
}

/// The decide/score split must pin the historical decision rule: for
/// every backend, `detect_with` returns exactly
/// `decide(score, threshold)` with the score and threshold it reports.
#[test]
fn outcomes_carry_their_own_evidence() {
    let (euclid, backscatter) = cheap_roster();
    let kurtosis = SpectralKurtosisDetector {
        traces_per_sensor: 1,
        ..SpectralKurtosisDetector::default()
    };
    let dets: [&dyn Detector; 3] = [&euclid, &backscatter, &kurtosis];
    let mut ctx = AcqContext::new(chip());
    for det in dets {
        for scenario in [
            Scenario::baseline().with_seed(4100),
            Scenario::trojan_active(TrojanKind::T4).with_seed(4200),
        ] {
            let out = det.detect_with(&mut ctx, &scenario).expect("detector runs");
            assert_eq!(
                out.detected,
                det.decide(out.score, out.threshold),
                "{}: detected must equal decide(score, threshold)",
                det.name()
            );
            assert_eq!(
                out.threshold.to_bits(),
                det.threshold().to_bits(),
                "{}: outcome must carry the default threshold",
                det.name()
            );
            assert_eq!(out.traces_used, det.traces_per_score(), "{}", det.name());
        }
    }
}

/// The Euclidean studentized-shift score must reproduce the historical
/// `test_mu > ref_mu + k·sigma` decision at the default config — the
/// old-vs-new regression pin for the threshold lift (the Table I
/// byte-compare in CI covers the cross-domain and backscatter rows at
/// full budgets).
#[test]
fn euclidean_score_reproduces_historical_decisions() {
    let det = EuclideanDetector::single_coil(4);
    let mut ctx = AcqContext::new(chip());
    for (kind, seed) in [
        (None, 5001u64),
        (Some(TrojanKind::T1), 5002),
        (Some(TrojanKind::T4), 5003),
    ] {
        let scenario = match kind {
            Some(k) => Scenario::trojan_active(k),
            None => Scenario::baseline(),
        }
        .with_seed(seed);
        let score = det.score_with(&mut ctx, &scenario).expect("score runs");
        let out = det.detect_with(&mut ctx, &scenario).expect("detector runs");
        // Pure in the scenario: scoring twice is bit-identical.
        assert_eq!(score.to_bits(), out.score.to_bits());
        // The historical rule, restated over the score.
        assert_eq!(out.detected, score > det.config.k_sigma);
    }
}

/// The cross-domain full verdict and the detection-only scoring path
/// must agree bit for bit — `Verdict::peak_excess_db` is the same
/// statistic `score_with` computes without templates or zero-span.
#[test]
fn cross_domain_score_paths_agree() {
    let campaign = psa_repro::runtime::Campaign::new(chip(), Engine::serial());
    let det = CrossDomainDetector::with_baseline(campaign.learn_baseline(0xBA5E));
    let mut ctx = AcqContext::new(chip());
    let scenario = Scenario::trojan_active(TrojanKind::T4).with_seed(104);
    let score = det.score_with(&mut ctx, &scenario).expect("score runs");
    let out = det.detect_with(&mut ctx, &scenario).expect("detector runs");
    assert_eq!(
        score.to_bits(),
        out.score.to_bits(),
        "cheap scoring path diverged from the full verdict statistic"
    );
    assert!(out.detected, "T4 is the easy Trojan");
    assert!(score > out.threshold);
    assert_eq!(out.localized_sensor, Some(10), "paper: sensor 10");
}

/// The bake-off report — scores, curves, AUCs — must be bit-identical
/// between the serial engine and a two-worker pool.
#[test]
fn bakeoff_report_is_worker_count_invariant() {
    let (euclid, backscatter) = cheap_roster();
    let dets: [&dyn ScoredDetector; 2] = [&euclid, &backscatter];
    let config = BakeoffConfig {
        seeds_per_scenario: 1,
        ..BakeoffConfig::default()
    };
    let serial = Bakeoff::new(chip(), Engine::serial(), config.clone())
        .run(&dets)
        .expect("serial bake-off");
    let parallel = Bakeoff::new(chip(), Engine::new(2), config)
        .run(&dets)
        .expect("parallel bake-off");
    assert_eq!(serial.detectors, parallel.detectors);
    assert_eq!(serial.cells.len(), parallel.cells.len());
    for (s, p) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(s.detector, p.detector);
        assert_eq!(s.trojan, p.trojan);
        assert_eq!(s.seed, p.seed);
        assert_eq!(
            s.score.to_bits(),
            p.score.to_bits(),
            "score diverged for {:?} seed {}",
            s.trojan,
            s.seed
        );
    }
    assert_eq!(serial.curves.len(), parallel.curves.len());
    for (s, p) in serial.curves.iter().zip(&parallel.curves) {
        assert_eq!(s.auc.to_bits(), p.auc.to_bits());
        assert_eq!(s.points, p.points);
    }
    // Shape: per detector, one curve per Trojan plus the pooled row.
    assert_eq!(serial.curves.len(), dets.len() * 5);
    assert!(serial.curves.iter().all(|c| (0.0..=1.0).contains(&c.auc)));
}
