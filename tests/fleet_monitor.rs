//! Integration: the fleet-scale streaming monitor — per-die variation,
//! sharded baselines, and the multiplexed round-robin stream — must be
//! byte-identical at any worker count and must actually detect the
//! infected dies it seeds.

use psa_repro::core::chip::{ChipVariation, TestChip};
use psa_repro::runtime::fleet::{Fleet, FleetConfig, FleetReport};
use psa_repro::runtime::Engine;
use std::sync::OnceLock;

fn chip() -> &'static TestChip {
    static CHIP: OnceLock<TestChip> = OnceLock::new();
    CHIP.get_or_init(TestChip::date24)
}

/// A small fleet that still exercises every moving part: multiple
/// shards, infected and clean dies, more than one Trojan kind.
fn small_config() -> FleetConfig {
    FleetConfig {
        chips: 6,
        records: 3,
        baseline_records: 2,
        min_window_records: 2,
        infect_every: 3,
        activation_record: 1,
        shard_chips: 2,
        ..FleetConfig::default()
    }
}

#[test]
fn fleet_run_is_worker_count_invariant() {
    let config = small_config();
    let fleet = Fleet::new(chip(), config).unwrap();

    let serial = Engine::new(1);
    let base_serial = fleet.learn_baselines(&serial).unwrap();
    let out_serial = fleet.run(&serial, &base_serial).unwrap();

    let parallel = Engine::new(3);
    let base_parallel = fleet.learn_baselines(&parallel).unwrap();
    let out_parallel = fleet.run(&parallel, &base_parallel).unwrap();

    // Sharded learning merges in submission order: bit-identical store.
    assert_eq!(base_serial, base_parallel);
    // The multiplexed stream's outcomes are invariant too.
    assert_eq!(out_serial, out_parallel);

    let report = FleetReport::from_outcomes(&out_serial, fleet.config());
    assert_eq!(report.chips, 6);
    assert_eq!(report.records, 18);
    assert_eq!(report.infected, 2);
    // The seeded Trojans are real detections, not a formatting artifact.
    assert!(report.detected >= 1, "report:\n{report}");
    assert_eq!(format!("{report}"), {
        let again = FleetReport::from_outcomes(&out_parallel, fleet.config());
        format!("{again}")
    });
}

#[test]
fn fleet_dies_are_distinct_but_reproducible() {
    let fleet = Fleet::new(chip(), small_config()).unwrap();
    let v0 = fleet.variation(0);
    let v1 = fleet.variation(1);
    assert_ne!(v0, v1, "two dies must not share a variation");
    assert_eq!(v0, fleet.variation(0), "a die must reproduce itself");
    // Infection pattern: every third chip here, kinds cycling.
    assert!(fleet.infected(0) && fleet.infected(3));
    assert!(!fleet.infected(1) && !fleet.infected(2));
    let s0 = fleet.schedule(0);
    let s3 = fleet.schedule(3);
    assert_eq!(s0.first_activation_record(), Some(1));
    assert_eq!(s3.first_activation_record(), Some(1));
    assert!(fleet.schedule(1).first_activation_record().is_none());
    // Nominal variation stays the exact identity the acquisition layer
    // relies on.
    assert_eq!(ChipVariation::nominal().noise_scale(), 1.0);
}

#[test]
fn fleet_validation_rejects_bad_shapes() {
    let bad = |f: fn(&mut FleetConfig)| {
        let mut c = small_config();
        f(&mut c);
        Fleet::new(chip(), c).is_err()
    };
    assert!(bad(|c| c.chips = 0));
    assert!(bad(|c| c.records = 0));
    assert!(bad(|c| c.baseline_records = 0));
    assert!(bad(|c| c.min_window_records = 0));
    assert!(bad(|c| c.min_window_records = c.window_records + 1));
    assert!(bad(|c| c.decimate = 0));
    assert!(bad(|c| c.shard_chips = 0));
    assert!(bad(|c| c.infect_every = 0));
    assert!(bad(|c| c.sensor = 16));
    assert!(bad(|c| c.activation_record = c.records));

    // Baselines must match the fleet they serve.
    let fleet = Fleet::new(chip(), small_config()).unwrap();
    let other = Fleet::new(
        chip(),
        FleetConfig {
            chips: 2,
            ..small_config()
        },
    )
    .unwrap();
    let engine = Engine::new(1);
    let two_chip_store = other.learn_baselines(&engine).unwrap();
    assert!(fleet.run(&engine, &two_chip_store).is_err());
}
