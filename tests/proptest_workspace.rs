//! Workspace-level property tests: invariants that span crates.
//!
//! The container has no network access, so instead of the `proptest`
//! crate these properties are checked over a deterministic seeded sweep:
//! every case derives its inputs from `SmallRng`, which keeps failures
//! reproducible (the failing seed is in the assertion message).

use psa_repro::array::coil::{extract_all_cycles, extract_coil, program_spiral};
use psa_repro::array::lattice::Lattice;
use psa_repro::array::program::SwitchMatrix;
use psa_repro::array::tgate::TGate;
use psa_repro::dsp::rng::SmallRng;
use psa_repro::field::dipole::Dipole;
use psa_repro::gatesim::activity::{ActivitySimulator, ChipConfig, Source};
use psa_repro::layout::{Point, Rect};

const CASES: u64 = 24;

fn in_range(rng: &mut SmallRng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.gen_f64()
}

fn index_in(rng: &mut SmallRng, lo: usize, hi: usize) -> usize {
    lo + rng.gen_index(hi - lo)
}

/// Any valid rectangle programming extracts exactly one 4-switch
/// coil whose enclosed area matches the node geometry.
#[test]
fn rectangle_programming_roundtrip() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let r0 = index_in(&mut rng, 0, 20);
        let c0 = index_in(&mut rng, 0, 20);
        let dr = index_in(&mut rng, 2, 15);
        let dc = index_in(&mut rng, 2, 15);
        let lattice = Lattice::date24();
        let mut m = SwitchMatrix::new(&lattice);
        m.program_rectangle(r0, c0, r0 + dr, c0 + dc).unwrap();
        let coil = extract_coil(&lattice, &m).unwrap();
        assert_eq!(coil.switch_count(), 4, "seed {case}");
        let expected = (dr as f64 * lattice.pitch_um()) * (dc as f64 * lattice.pitch_um());
        assert!(
            (coil.enclosed_area_um2() - expected).abs() < 1e-6,
            "seed {case}"
        );
    }
}

/// Any spiral programming with valid extent extracts exactly one
/// cycle of 4·turns switches.
#[test]
fn spiral_programming_roundtrip() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let r0 = index_in(&mut rng, 0, 8);
        let c0 = index_in(&mut rng, 0, 8);
        let extent = index_in(&mut rng, 12, 27);
        let turns = index_in(&mut rng, 1, 6);
        let lattice = Lattice::date24();
        let mut m = SwitchMatrix::new(&lattice);
        program_spiral(&mut m, r0, c0, r0 + extent, c0 + extent, turns).unwrap();
        let cycles = extract_all_cycles(&lattice, &m).unwrap();
        assert_eq!(cycles.len(), 1, "seed {case}");
        assert_eq!(cycles[0].switch_count(), 4 * turns, "seed {case}");
    }
}

/// T-gate resistance is monotone in both supply and temperature
/// across the whole operating envelope.
#[test]
fn tgate_monotonicity() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let v = in_range(&mut rng, 0.8, 1.25);
        let dv = in_range(&mut rng, 0.01, 0.2);
        let t = in_range(&mut rng, -40.0, 110.0);
        let dt = in_range(&mut rng, 1.0, 40.0);
        let tg = TGate::date24();
        assert!(tg.r_on_ohm(v + dv, t) < tg.r_on_ohm(v, t), "seed {case}");
        assert!(tg.r_on_ohm(v, t + dt) > tg.r_on_ohm(v, t), "seed {case}");
    }
}

/// Dipole flux through a loop directly above always beats the same
/// loop shifted far to the side (localization invariant).
#[test]
fn flux_locality() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let x = in_range(&mut rng, 100.0, 900.0);
        let y = in_range(&mut rng, 100.0, 900.0);
        let side = in_range(&mut rng, 50.0, 250.0);
        let d = Dipole::new(Point::new(x, y), 1.0e-12);
        let over = Rect::centered(Point::new(x, y), side, side).unwrap();
        let away = Rect::centered(
            Point::new(if x < 500.0 { x + 600.0 } else { x - 600.0 }, y),
            side,
            side,
        )
        .unwrap();
        let k_over = d.flux_through_rect(&over, 4.8).abs();
        let k_away = d.flux_through_rect(&away, 4.8).abs();
        assert!(k_over > 5.0 * k_away, "seed {case}");
    }
}

/// The activity simulator is deterministic and continuous for any
/// window split.
#[test]
fn activity_window_split() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let total = index_in(&mut rng, 24, 200);
        let split = index_in(&mut rng, 1, 23).min(total - 1);
        let mut one = ActivitySimulator::new(ChipConfig::default());
        let whole = one.advance(total);
        let mut two = ActivitySimulator::new(ChipConfig::default());
        let first = two.advance(split);
        let second = two.advance(total - split);
        for s in Source::ALL {
            let joined: Vec<f64> = first.per_source[&s]
                .iter()
                .chain(&second.per_source[&s])
                .copied()
                .collect();
            assert_eq!(&joined, &whole.per_source[&s], "seed {case}");
        }
    }
}
