//! Workspace-level property tests: invariants that span crates.

use proptest::prelude::*;
use psa_repro::array::coil::{extract_all_cycles, extract_coil, program_spiral};
use psa_repro::array::lattice::Lattice;
use psa_repro::array::program::SwitchMatrix;
use psa_repro::array::tgate::TGate;
use psa_repro::field::dipole::Dipole;
use psa_repro::gatesim::activity::{ActivitySimulator, ChipConfig, Source};
use psa_repro::layout::{Point, Rect};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid rectangle programming extracts exactly one 4-switch
    /// coil whose enclosed area matches the node geometry.
    #[test]
    fn rectangle_programming_roundtrip(
        r0 in 0usize..20, c0 in 0usize..20,
        dr in 2usize..15, dc in 2usize..15,
    ) {
        let lattice = Lattice::date24();
        let mut m = SwitchMatrix::new(&lattice);
        m.program_rectangle(r0, c0, r0 + dr, c0 + dc).unwrap();
        let coil = extract_coil(&lattice, &m).unwrap();
        prop_assert_eq!(coil.switch_count(), 4);
        let expected = (dr as f64 * lattice.pitch_um()) * (dc as f64 * lattice.pitch_um());
        prop_assert!((coil.enclosed_area_um2() - expected).abs() < 1e-6);
    }

    /// Any spiral programming with valid extent extracts exactly one
    /// cycle of 4·turns switches.
    #[test]
    fn spiral_programming_roundtrip(
        r0 in 0usize..8, c0 in 0usize..8,
        extent in 12usize..27, turns in 1usize..6,
    ) {
        let lattice = Lattice::date24();
        let mut m = SwitchMatrix::new(&lattice);
        program_spiral(&mut m, r0, c0, r0 + extent, c0 + extent, turns).unwrap();
        let cycles = extract_all_cycles(&lattice, &m).unwrap();
        prop_assert_eq!(cycles.len(), 1);
        prop_assert_eq!(cycles[0].switch_count(), 4 * turns);
    }

    /// T-gate resistance is monotone in both supply and temperature
    /// across the whole operating envelope.
    #[test]
    fn tgate_monotonicity(
        v in 0.8f64..1.25,
        dv in 0.01f64..0.2,
        t in -40.0f64..110.0,
        dt in 1.0f64..40.0,
    ) {
        let tg = TGate::date24();
        prop_assert!(tg.r_on_ohm(v + dv, t) < tg.r_on_ohm(v, t));
        prop_assert!(tg.r_on_ohm(v, t + dt) > tg.r_on_ohm(v, t));
    }

    /// Dipole flux through a loop directly above always beats the same
    /// loop shifted far to the side (localization invariant).
    #[test]
    fn flux_locality(
        x in 100.0f64..900.0, y in 100.0f64..900.0,
        side in 50.0f64..250.0,
    ) {
        let d = Dipole::new(Point::new(x, y), 1.0e-12);
        let over = Rect::centered(Point::new(x, y), side, side).unwrap();
        let away = Rect::centered(
            Point::new(if x < 500.0 { x + 600.0 } else { x - 600.0 }, y),
            side,
            side,
        ).unwrap();
        let k_over = d.flux_through_rect(&over, 4.8).abs();
        let k_away = d.flux_through_rect(&away, 4.8).abs();
        prop_assert!(k_over > 5.0 * k_away);
    }

    /// The activity simulator is deterministic and continuous for any
    /// window split.
    #[test]
    fn activity_window_split(total in 24usize..200, split in 1usize..23) {
        let split = split.min(total - 1);
        let mut one = ActivitySimulator::new(ChipConfig::default());
        let whole = one.advance(total);
        let mut two = ActivitySimulator::new(ChipConfig::default());
        let first = two.advance(split);
        let second = two.advance(total - split);
        for s in Source::ALL {
            let joined: Vec<f64> = first.per_source[&s]
                .iter()
                .chain(&second.per_source[&s])
                .copied()
                .collect();
            prop_assert_eq!(&joined, &whole.per_source[&s]);
        }
    }
}
