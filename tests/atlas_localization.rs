//! Integration: the localization-accuracy atlas — synthetic-Trojan
//! placement sweeps scored in µm. Chip-bound edge cases (off-die
//! rejection, zero drive, localization at a sensor site) plus the
//! engine-level invariant: an atlas campaign's grid of errors is
//! identical at any worker count.

use psa_repro::core::acquisition::AcqContext;
use psa_repro::core::atlas::{PlacementSweep, PlacementSweepConfig, SyntheticEmitter};
use psa_repro::core::chip::TestChip;
use psa_repro::core::error::CoreError;
use psa_repro::layout::emitter::{sweep_grid, EmitterSite};
use psa_repro::layout::{LayoutError, Point};
use psa_repro::runtime::{AtlasCampaign, AtlasCorner, AtlasJob, Engine};
use std::sync::OnceLock;

fn chip() -> &'static TestChip {
    static CHIP: OnceLock<TestChip> = OnceLock::new();
    CHIP.get_or_init(TestChip::date24)
}

/// A reduced sweep configuration: one record per sensor keeps each
/// placement cheap while the emitter lines stay far above the floor.
fn fast_config() -> PlacementSweepConfig {
    PlacementSweepConfig {
        records_per_sensor: 1,
        ..PlacementSweepConfig::default()
    }
}

#[test]
fn off_die_placements_are_rejected() {
    let sweep = PlacementSweep::new(chip(), fast_config()).expect("sweep builds");
    // Centre outside the die.
    let outside = EmitterSite::new(Point::new(-50.0, 500.0), 0.0);
    assert!(matches!(
        sweep.coupling_row(&outside),
        Err(CoreError::Layout(LayoutError::OffDie { .. }))
    ));
    // Centre on-die, but the footprint spills over the edge.
    let spilling = EmitterSite::new(Point::new(10.0, 500.0), 40.0);
    assert!(matches!(
        sweep.coupling_row(&spilling),
        Err(CoreError::Layout(LayoutError::OffDie { .. }))
    ));
    // The full evaluation path surfaces the same error.
    let corner = AtlasCorner::new("nominal", 1.0, 25.0, 7);
    let baseline = {
        let mut ctx = AcqContext::new(chip());
        sweep
            .learn_baseline_with(&mut ctx, &corner.scenario())
            .expect("baseline learns")
    };
    let mut ctx = AcqContext::new(chip());
    let err = sweep.evaluate_with(
        &mut ctx,
        &corner.scenario(),
        &SyntheticEmitter::reference_at(outside),
        &baseline,
    );
    assert!(matches!(
        err,
        Err(CoreError::Layout(LayoutError::OffDie { .. }))
    ));
}

#[test]
fn zero_drive_emitter_is_not_detected() {
    let sweep = PlacementSweep::new(chip(), fast_config()).expect("sweep builds");
    let corner = AtlasCorner::new("nominal", 1.0, 25.0, 11);
    let mut ctx = AcqContext::new(chip());
    let baseline = sweep
        .learn_baseline_with(&mut ctx, &corner.scenario())
        .expect("baseline learns");
    let site = EmitterSite::new(Point::new(500.0, 500.0), 40.0);
    let mut quiet = SyntheticEmitter::reference_at(site);
    quiet.trojan.drive_cells = 0.0;
    let outcome = sweep
        .evaluate_with(&mut ctx, &corner.scenario(), &quiet, &baseline)
        .expect("a silent emitter is not an error");
    assert!(!outcome.detected, "zero drive must not alarm");
    assert_eq!(outcome.predicted_sensor, None);
    assert_eq!(outcome.error_um, None);
    assert_eq!(outcome.centroid_error_um, None);
    assert!(outcome.nearest_sensor_um > 0.0);
}

#[test]
fn emitter_at_a_sensor_centre_localizes_to_it() {
    let sweep = PlacementSweep::new(chip(), fast_config()).expect("sweep builds");
    let corner = AtlasCorner::new("nominal", 1.0, 25.0, 13);
    let mut ctx = AcqContext::new(chip());
    let baseline = sweep
        .learn_baseline_with(&mut ctx, &corner.scenario())
        .expect("baseline learns");
    // Place the reference emitter directly under a central sensor: the
    // predicted sensor must be that one, i.e. error ≈ 0 (well inside
    // half the ~250 µm sensor pitch).
    let target = 5usize;
    let centre = chip()
        .sensor_bank()
        .iter()
        .nth(target)
        .unwrap()
        .footprint()
        .center();
    let emitter = SyntheticEmitter::reference_at(EmitterSite::new(centre, 40.0));
    let outcome = sweep
        .evaluate_with(&mut ctx, &corner.scenario(), &emitter, &baseline)
        .expect("evaluation runs");
    assert!(outcome.detected, "reference emitter must be detected");
    assert_eq!(outcome.predicted_sensor, Some(target));
    let err = outcome.error_um.expect("detected implies an error figure");
    assert!(err < 125.0, "localization error {err} µm");
    assert!(outcome.top_excess_db > 0.0);
    assert!(outcome.prominent_freq_hz.is_some());
}

#[test]
fn atlas_campaign_is_invariant_under_worker_count() {
    let corners = vec![
        AtlasCorner::new("nominal", 1.0, 25.0, 0xA71A),
        AtlasCorner::new("hot", 1.1, 85.0, 0xA71B),
    ];
    let sites = sweep_grid(chip().floorplan().die(), 2, 2, 100.0, 40.0);
    let jobs: Vec<AtlasJob> = (0..corners.len())
        .flat_map(|c| sites.iter().map(move |&s| AtlasJob::reference(s, c)))
        .collect();

    let run = |workers: usize| {
        let campaign =
            AtlasCampaign::new(chip(), Engine::new(workers), fast_config(), corners.clone())
                .expect("campaign builds");
        campaign.run(&jobs).expect("campaign runs")
    };
    let serial = run(1);
    let parallel = run(3);
    assert_eq!(serial.len(), jobs.len());
    // PartialEq over every f64 field: the grids must match exactly, not
    // approximately — the byte-identical stdout of `localize_atlas`
    // rests on this.
    assert_eq!(serial, parallel);
    // And the sweep actually exercises detection somewhere.
    assert!(
        serial.iter().any(|o| o.outcome.detected),
        "no placement detected anywhere in the invariance grid"
    );
}

#[test]
fn atlas_jobs_reject_unknown_corners() {
    let corners = vec![AtlasCorner::new("nominal", 1.0, 25.0, 1)];
    let campaign = AtlasCampaign::new(chip(), Engine::new(1), fast_config(), corners)
        .expect("campaign builds");
    let site = EmitterSite::new(Point::new(500.0, 500.0), 40.0);
    assert!(campaign.run(&[AtlasJob::reference(site, 5)]).is_err());
    assert!(AtlasCampaign::new(chip(), Engine::new(1), fast_config(), Vec::new()).is_err());
}
