//! Integration: multi-emitter joint localization — the refactor seam
//! between the single-source atlas and the successive-cancellation
//! localizer. Pins the K=1 bit-agreement contract, the zero-drive
//! no-source path, K∈{2,3} recovery of count/location/power, tuple
//! validation, and the engine-level invariant: a joint-localization
//! campaign's outcomes are identical at any worker count.

use psa_repro::core::acquisition::AcqContext;
use psa_repro::core::atlas::{PlacementSweepConfig, SyntheticEmitter};
use psa_repro::core::chip::TestChip;
use psa_repro::core::error::CoreError;
use psa_repro::core::multiloc::{score_sources, MultiLocConfig, MultiLocalizer};
use psa_repro::gatesim::synth::SyntheticTrojan;
use psa_repro::layout::emitter::EmitterSite;
use psa_repro::layout::{LayoutError, Point};
use psa_repro::runtime::{AtlasCorner, Engine, MultilocCampaign, MultilocJob};
use std::sync::OnceLock;

fn chip() -> &'static TestChip {
    static CHIP: OnceLock<TestChip> = OnceLock::new();
    CHIP.get_or_init(TestChip::date24)
}

/// A reduced configuration: one record per sensor keeps each tuple
/// cheap while the emitter lines stay far above the floor.
fn fast_config() -> MultiLocConfig {
    MultiLocConfig {
        sweep: PlacementSweepConfig {
            records_per_sensor: 1,
            ..PlacementSweepConfig::default()
        },
        ..MultiLocConfig::default()
    }
}

/// A reference emitter with an explicit drive, cells.
fn emitter_at(x: f64, y: f64, drive_cells: f64) -> SyntheticEmitter {
    SyntheticEmitter {
        trojan: SyntheticTrojan::am_reference(drive_cells),
        ..SyntheticEmitter::reference_at(EmitterSite::new(Point::new(x, y), 40.0))
    }
}

#[test]
fn k1_bit_agrees_with_the_single_source_atlas() {
    let localizer = MultiLocalizer::new(chip(), fast_config()).expect("localizer builds");
    let corner = AtlasCorner::new("nominal", 1.0, 25.0, 0xA71A);
    let mut ctx = AcqContext::new(chip());
    let baseline = localizer
        .sweep()
        .learn_baseline_with(&mut ctx, &corner.scenario())
        .expect("baseline learns");
    let envelopes = localizer.sweep().baseline_envelopes(&baseline);

    let emitter = SyntheticEmitter::reference_at(EmitterSite::new(Point::new(300.0, 300.0), 40.0));
    let scenario = corner.scenario().with_seed(0x7E57);
    let atlas = localizer
        .sweep()
        .evaluate_enveloped_with(&mut ctx, &scenario, &emitter, &baseline, &envelopes)
        .expect("atlas evaluation runs");
    let joint = localizer
        .localize_with(
            &mut ctx,
            &scenario,
            std::slice::from_ref(&emitter),
            &baseline,
            &envelopes,
            None,
        )
        .expect("joint localization runs");

    assert!(atlas.detected && joint.detected);
    // The K=1 seam is bitwise, not approximate: same sensing path, same
    // shared `localize` helpers, so every shared figure must match to
    // the last bit.
    assert_eq!(joint.prominent_freq_hz, atlas.prominent_freq_hz);
    assert_eq!(joint.sources.len(), 1, "one emitter, one source");
    assert_eq!(Some(joint.sources[0].sensor), atlas.predicted_sensor);
    let (cx, cy) = joint.centroid_um.expect("detected implies a centroid");
    let centroid_error = Point::new(cx, cy).distance_to(emitter.site.center);
    assert_eq!(Some(centroid_error), atlas.centroid_error_um);
    // And the matched hypothesis site stays within one grid cell of the
    // truth (the site grid quantizes, so this bound is geometric).
    let err =
        Point::new(joint.sources[0].x_um, joint.sources[0].y_um).distance_to(emitter.site.center);
    assert!(err < 125.0, "K=1 matched-site error {err} µm");
}

#[test]
fn zero_drive_tuple_reports_no_sources() {
    let localizer = MultiLocalizer::new(chip(), fast_config()).expect("localizer builds");
    let corner = AtlasCorner::new("nominal", 1.0, 25.0, 0xD0D0);
    let mut ctx = AcqContext::new(chip());
    let baseline = localizer
        .sweep()
        .learn_baseline_with(&mut ctx, &corner.scenario())
        .expect("baseline learns");
    let envelopes = localizer.sweep().baseline_envelopes(&baseline);

    let quiet = [emitter_at(300.0, 300.0, 0.0), emitter_at(700.0, 700.0, 0.0)];
    let outcome = localizer
        .localize_with(
            &mut ctx,
            &corner.scenario().with_seed(0x9A17),
            &quiet,
            &baseline,
            &envelopes,
            None,
        )
        .expect("a silent tuple is not an error");
    assert!(!outcome.detected, "zero drive must not alarm");
    assert!(outcome.sources.is_empty(), "no detection, no sources");
    assert_eq!(outcome.prominent_freq_hz, None);
    assert_eq!(outcome.centroid_um, None);

    let report = score_sources(&quiet, &outcome.sources);
    assert_eq!(report.false_alarm, 0, "phantom sources are the failure");
}

#[test]
fn concurrent_sources_are_counted_located_and_powered() {
    let localizer = MultiLocalizer::new(chip(), fast_config()).expect("localizer builds");
    let corner = AtlasCorner::new("nominal", 1.0, 25.0, 0xBEE5);
    let mut ctx = AcqContext::new(chip());
    let baseline = localizer
        .sweep()
        .learn_baseline_with(&mut ctx, &corner.scenario())
        .expect("baseline learns");
    let envelopes = localizer.sweep().baseline_envelopes(&baseline);
    let calibration = localizer
        .calibrate_with(
            &mut ctx,
            &corner.scenario().with_seed(0xCA11),
            &baseline,
            &envelopes,
        )
        .expect("calibration measures a positive instrument constant");

    let tuple = [
        emitter_at(300.0, 300.0, 800.0),
        emitter_at(700.0, 700.0, 1200.0),
        emitter_at(300.0, 700.0, 500.0),
    ];
    for k in 2..=tuple.len() {
        let truth = &tuple[..k];
        let outcome = localizer
            .localize_with(
                &mut ctx,
                &corner.scenario().with_seed(0x7E57 + k as u64),
                truth,
                &baseline,
                &envelopes,
                Some(&calibration),
            )
            .expect("joint localization runs");
        assert!(outcome.detected);
        assert_eq!(
            outcome.sources.len(),
            k,
            "successive cancellation must recover the source count at K={k}"
        );
        let report = score_sources(truth, &outcome.sources);
        assert_eq!((report.miss, report.false_alarm), (0, 0), "K={k}");
        for pair in &report.pairs {
            assert!(
                pair.error_um < 125.0,
                "K={k} per-source error {} µm",
                pair.error_um
            );
            let power = pair.power_error_db.expect("calibrated run estimates power");
            assert!(power.abs() < 3.0, "K={k} power error {power} dB");
        }
    }
}

#[test]
fn campaign_is_invariant_under_worker_count() {
    let corners = vec![
        AtlasCorner::new("nominal", 1.0, 25.0, 0xA71A),
        AtlasCorner::new("hot", 1.1, 85.0, 0xA71B),
    ];
    let tuples = [
        vec![emitter_at(300.0, 300.0, 800.0)],
        vec![
            emitter_at(300.0, 300.0, 800.0),
            emitter_at(700.0, 700.0, 1200.0),
        ],
    ];
    let jobs: Vec<MultilocJob> = (0..corners.len())
        .flat_map(|corner| {
            tuples.iter().map(move |tuple| MultilocJob {
                corner,
                emitters: tuple.clone(),
            })
        })
        .collect();

    let run = |workers: usize| {
        let campaign =
            MultilocCampaign::new(chip(), Engine::new(workers), fast_config(), corners.clone())
                .expect("campaign builds");
        campaign.run(&jobs).expect("campaign runs")
    };
    let serial = run(1);
    let parallel = run(3);
    assert_eq!(serial.len(), jobs.len());
    // PartialEq over every f64 field: outcomes and scores must match
    // exactly, not approximately — the byte-identical stdout of
    // `multi_localize` rests on this.
    assert_eq!(serial, parallel);
    assert!(
        serial.iter().all(|o| o.outcome.detected),
        "every driven tuple detects"
    );
    // K=1 campaign outcomes carry exactly one source per tuple.
    assert!(serial
        .iter()
        .filter(|o| o.true_count == 1)
        .all(|o| o.outcome.sources.len() == 1));
}

#[test]
fn campaigns_reject_bad_corners_and_tuples() {
    let corners = vec![AtlasCorner::new("nominal", 1.0, 25.0, 1)];
    let campaign = MultilocCampaign::new(chip(), Engine::new(1), fast_config(), corners)
        .expect("campaign builds");

    // Unknown corner index.
    let ok_tuple = vec![emitter_at(500.0, 500.0, 800.0)];
    assert!(campaign
        .run(&[MultilocJob {
            corner: 5,
            emitters: ok_tuple,
        }])
        .is_err());

    // A tuple violating the minimum separation surfaces the layout
    // error through the campaign.
    let crowded = MultilocJob {
        corner: 0,
        emitters: vec![
            emitter_at(500.0, 500.0, 800.0),
            emitter_at(530.0, 500.0, 800.0),
        ],
    };
    let err = campaign.run(&[crowded]);
    assert!(matches!(
        err,
        Err(CoreError::Layout(LayoutError::SitesTooClose { .. }))
    ));

    // No corners, no campaign.
    assert!(MultilocCampaign::new(chip(), Engine::new(1), fast_config(), Vec::new()).is_err());
}
