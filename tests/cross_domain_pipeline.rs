//! End-to-end integration: the full cross-domain pipeline on the
//! assembled chip — detection, localization, identification, and the
//! no-Trojan control, spanning every workspace crate.

use psa_repro::core::chip::TestChip;
use psa_repro::core::cross_domain::{Baseline, CrossDomainAnalyzer};
use psa_repro::core::scenario::Scenario;
use psa_repro::gatesim::trojan::TrojanKind;
use std::sync::OnceLock;

fn chip() -> &'static TestChip {
    static CHIP: OnceLock<TestChip> = OnceLock::new();
    CHIP.get_or_init(TestChip::date24)
}

fn baseline() -> &'static Baseline {
    static BASE: OnceLock<Baseline> = OnceLock::new();
    BASE.get_or_init(|| CrossDomainAnalyzer::new(chip()).unwrap().learn_baseline(42))
}

#[test]
fn control_run_stays_quiet() {
    let analyzer = CrossDomainAnalyzer::new(chip()).unwrap();
    let verdict = analyzer
        .analyze(&Scenario::baseline().with_seed(777), baseline())
        .expect("analysis runs");
    assert!(!verdict.detected, "false positive on the control run");
    assert_eq!(verdict.localized_sensor, None);
    assert_eq!(verdict.identified, None);
}

#[test]
fn t4_detected_localized_identified() {
    let analyzer = CrossDomainAnalyzer::new(chip()).unwrap();
    let verdict = analyzer
        .analyze(
            &Scenario::trojan_active(TrojanKind::T4).with_seed(104),
            baseline(),
        )
        .expect("analysis runs");
    assert!(verdict.detected);
    assert_eq!(verdict.localized_sensor, Some(10), "paper: sensor 10");
    assert_eq!(verdict.identified, Some(TrojanKind::T4));
    // The prominent component is the 48 MHz sideband family line.
    let f = verdict.prominent_freq_hz.expect("component found");
    assert!((f - 48.0e6).abs() < 1.0e6, "prominent at {f} Hz");
    // Detection cost matches the paper: fewer than ten traces per sensor.
    assert!(verdict.traces_per_sensor < 10);
}

#[test]
fn small_trojan_t3_detected_and_localized() {
    // T3 is 1.14 % of the chip — the Trojan the baselines miss.
    let analyzer = CrossDomainAnalyzer::new(chip()).unwrap();
    let verdict = analyzer
        .analyze(
            &Scenario::trojan_active(TrojanKind::T3).with_seed(103),
            baseline(),
        )
        .expect("analysis runs");
    assert!(verdict.detected, "PSA must catch the small Trojan");
    assert_eq!(verdict.localized_sensor, Some(10));
    assert_eq!(verdict.identified, Some(TrojanKind::T3));
}

#[test]
fn t1_and_t2_verdicts() {
    let analyzer = CrossDomainAnalyzer::new(chip()).unwrap();
    for (kind, seed) in [(TrojanKind::T1, 101u64), (TrojanKind::T2, 102)] {
        let verdict = analyzer
            .analyze(&Scenario::trojan_active(kind).with_seed(seed), baseline())
            .expect("analysis runs");
        assert!(verdict.detected, "{kind} not detected");
        assert_eq!(verdict.localized_sensor, Some(10), "{kind} mislocalized");
        assert_eq!(verdict.identified, Some(kind), "{kind} misidentified");
    }
}

#[test]
fn localized_region_contains_the_trojan() {
    let analyzer = CrossDomainAnalyzer::new(chip()).unwrap();
    let verdict = analyzer
        .analyze(
            &Scenario::trojan_active(TrojanKind::T4).with_seed(200),
            baseline(),
        )
        .expect("analysis runs");
    let region = verdict.localized_region.expect("region reported");
    let t4 = chip()
        .floorplan()
        .module(psa_repro::layout::floorplan::ModuleKind::TrojanT4)
        .expect("T4 placed");
    assert!(
        region.intersects(&t4.region),
        "localized region {region} misses T4 at {}",
        t4.region
    );
}

#[test]
fn concurrent_trojans_still_detected_and_localized() {
    // Extension beyond the paper's one-at-a-time evaluation: T1 and T4
    // active together. Both sit under sensor 10; the monitor must still
    // detect and localize (identification may report either culprit).
    let analyzer = CrossDomainAnalyzer::new(chip()).unwrap();
    let scenario = Scenario::trojans_active(&[TrojanKind::T1, TrojanKind::T4]).with_seed(400);
    let verdict = analyzer
        .analyze(&scenario, baseline())
        .expect("analysis runs");
    assert!(verdict.detected);
    assert_eq!(verdict.localized_sensor, Some(10));
    let f = verdict.prominent_freq_hz.expect("component found");
    assert!((f - 48.0e6).abs() < 1.0e6);
    assert!(verdict.identified.is_some());
}

#[test]
fn ranking_contrast_sensor10_vs_sensor0() {
    // The Fig 4 contrast, end to end: sensor 10's anomaly amplitude beats
    // the empty corner's by a wide margin.
    let analyzer = CrossDomainAnalyzer::new(chip()).unwrap();
    let verdict = analyzer
        .analyze(
            &Scenario::trojan_active(TrojanKind::T1).with_seed(300),
            baseline(),
        )
        .expect("analysis runs");
    let amp_of = |sensor: usize| {
        verdict
            .ranking
            .iter()
            .find(|a| a.sensor == sensor)
            .map(|a| a.amplitude_v)
            .expect("sensor in ranking")
    };
    assert!(amp_of(10) > 3.0 * amp_of(0), "insufficient contrast");
}
