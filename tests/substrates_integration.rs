//! Integration across the substrate crates: cross-crate invariants that
//! no single crate can check alone.

use psa_repro::array::program::SENSOR_TURNS;
use psa_repro::array::sensors::SensorBank;
use psa_repro::core::acquisition::Acquisition;
use psa_repro::core::chip::{SensorSelect, TestChip};
use psa_repro::core::scenario::Scenario;
use psa_repro::gatesim::activity::Source;
use psa_repro::gatesim::trojan::TrojanKind;
use psa_repro::layout::floorplan::{Floorplan, ModuleKind};
use std::sync::OnceLock;

fn chip() -> &'static TestChip {
    static CHIP: OnceLock<TestChip> = OnceLock::new();
    CHIP.get_or_init(TestChip::date24)
}

#[test]
fn gatesim_and_layout_agree_on_table2() {
    // Trojan cell counts live in two crates (netlist models and the
    // floorplan); they must agree with Table II and each other.
    let fp = Floorplan::date24_test_chip();
    for (kind, module) in [
        (TrojanKind::T1, ModuleKind::TrojanT1),
        (TrojanKind::T2, ModuleKind::TrojanT2),
        (TrojanKind::T3, ModuleKind::TrojanT3),
        (TrojanKind::T4, ModuleKind::TrojanT4),
    ] {
        assert_eq!(
            kind.cell_count(),
            fp.module(module).expect("placed").cell_count,
            "{kind} count mismatch between gatesim and layout"
        );
    }
    assert_eq!(fp.total_cells(), 28_806);
}

#[test]
fn sensor_bank_and_couplings_are_consistent() {
    // Every preset sensor extracts as one spiral and has couplings for
    // every activity source.
    let bank = SensorBank::date24_default();
    assert_eq!(bank.len(), 16);
    for s in bank.iter() {
        assert_eq!(s.coil().switch_count(), 4 * SENSOR_TURNS);
        let couplings = chip()
            .couplings_for(SensorSelect::Psa(s.index()))
            .expect("in range");
        assert_eq!(couplings.len(), Source::ALL.len());
        assert!(
            couplings.iter().any(|k| k.abs() > 0.0),
            "sensor {} couples to nothing",
            s.index()
        );
    }
}

#[test]
fn trojans_sit_under_sensor10_footprint() {
    let bank = SensorBank::date24_default();
    let fp10 = bank.sensor(10).expect("sensor 10").footprint();
    let plan = chip().floorplan();
    for t in plan.trojans() {
        assert!(
            fp10.contains(t.region.min()) && fp10.contains(t.region.max()),
            "{} outside sensor 10",
            t.kind
        );
    }
}

#[test]
fn acquisition_chain_end_to_end_shapes() {
    // gatesim → field → analog: one acquisition produces the expected
    // record shape and a spectrum with the 33 MHz clock line.
    let acq = Acquisition::new(chip());
    let traces = acq
        .acquire(&Scenario::baseline().with_seed(5), SensorSelect::Psa(10), 2)
        .expect("acquire");
    assert_eq!(traces.len(), 2);
    assert_eq!(traces.records[0].len(), 65_536);
    let spec = acq.fullres_spectrum_db(&traces).expect("spectrum");
    assert_eq!(spec.len(), 65_536 / 2 + 1);
    let clock_bin = acq.fullres_freq_bin(33.0e6);
    let floor_bin = acq.fullres_freq_bin(25.0e6);
    assert!(
        spec[clock_bin] > spec[floor_bin] + 20.0,
        "clock harmonic missing: {} vs {}",
        spec[clock_bin],
        spec[floor_bin]
    );
}

#[test]
fn all_probe_selections_acquire() {
    let acq = Acquisition::new(chip());
    for select in SensorSelect::BASELINES {
        let traces = acq
            .acquire(&Scenario::baseline().with_seed(6), select, 1)
            .expect("probe acquires");
        assert_eq!(traces.records[0].len(), 65_536);
    }
}

#[test]
fn vt_corners_do_not_break_acquisition() {
    // Sec. VI-C: the chain keeps working across supply and temperature
    // corners (the T-gate model changes impedance, not functionality).
    let acq = Acquisition::new(chip());
    for (vdd, temp) in [(0.8, -40.0), (1.0, 25.0), (1.2, 125.0)] {
        let scenario = Scenario::baseline()
            .with_seed(8)
            .with_vdd(vdd)
            .with_temp_c(temp);
        let traces = acq
            .acquire(&scenario, SensorSelect::Psa(10), 1)
            .expect("acquire at corner");
        let rms = {
            let r = &traces.records[0];
            (r.iter().map(|v| v * v).sum::<f64>() / r.len() as f64).sqrt()
        };
        assert!(rms > 0.0, "silent at vdd {vdd}, {temp} C");
    }
}
