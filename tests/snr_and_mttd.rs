//! Integration: the SNR procedure (Sec. VI-B) and the MTTD run-time
//! loop (Sec. VI-D) against the paper's headline numbers.

use psa_repro::core::chip::{SensorSelect, TestChip};
use psa_repro::core::cross_domain::CrossDomainAnalyzer;
use psa_repro::core::mttd::{mttd_trial, MonitorTiming};
use psa_repro::core::scenario::Scenario;
use psa_repro::core::snr;
use psa_repro::gatesim::trojan::TrojanKind;
use std::sync::OnceLock;

fn chip() -> &'static TestChip {
    static CHIP: OnceLock<TestChip> = OnceLock::new();
    CHIP.get_or_init(TestChip::date24)
}

#[test]
fn snr_values_land_in_paper_regime() {
    // Paper: PSA 41.0, single coil 30.5, ICR ~34, LF1 14.3 (dB).
    let rows = snr::snr_comparison(chip(), 3).expect("snr comparison");
    let get = |s: SensorSelect| {
        rows.iter()
            .find(|m| m.sensor == s)
            .map(|m| m.snr_db)
            .unwrap()
    };
    let psa = get(SensorSelect::Psa(10));
    let single = get(SensorSelect::SingleCoil);
    let icr = get(SensorSelect::IcrHh100);
    let lf1 = get(SensorSelect::LangerLf1);
    assert!((37.0..46.0).contains(&psa), "PSA {psa}");
    assert!((26.0..35.0).contains(&single), "single coil {single}");
    assert!((29.0..39.0).contains(&icr), "ICR {icr}");
    assert!((8.0..19.0).contains(&lf1), "LF1 {lf1}");
    // Paper ordering.
    assert!(psa > icr && icr > single && single > lf1);
}

#[test]
fn mttd_under_10ms_with_under_10_traces() {
    let analyzer = CrossDomainAnalyzer::new(chip());
    let baseline = analyzer.learn_baseline(0xBA5E);
    let timing = MonitorTiming::default();
    for kind in [TrojanKind::T4, TrojanKind::T3] {
        let scenario = Scenario::trojan_active(kind).with_seed(900);
        let r = mttd_trial(chip(), &scenario, &baseline, 10, &timing, 64).expect("trial runs");
        assert!(r.detected, "{kind} undetected");
        assert!(
            r.time_to_detect_s < 10.0e-3,
            "{kind} MTTD {} ms",
            r.time_to_detect_s * 1e3
        );
        assert!(r.traces_used < 10, "{kind} used {} traces", r.traces_used);
    }
}

#[test]
fn no_trojan_monitor_does_not_false_alarm() {
    let analyzer = CrossDomainAnalyzer::new(chip());
    let baseline = analyzer.learn_baseline(0xBA5E);
    let timing = MonitorTiming::default();
    let r = mttd_trial(
        chip(),
        &Scenario::baseline().with_seed(901),
        &baseline,
        10,
        &timing,
        12,
    )
    .expect("trial runs");
    assert!(!r.detected, "false alarm on quiet chip");
    assert_eq!(r.traces_used, 12);
}
