//! Integration: the SNR procedure (Sec. VI-B) and the MTTD run-time
//! loop (Sec. VI-D) against the paper's headline numbers — plus the
//! streaming-monitor equivalences: the batch `mttd_trial` must be
//! bit-identical to the streaming path it now adapts, and monitor
//! campaigns must be invariant under the worker count.

use psa_repro::core::acquisition::{AcqContext, TraceSet};
use psa_repro::core::calib;
use psa_repro::core::chip::{SensorSelect, TestChip};
use psa_repro::core::cross_domain::{Baseline, CrossDomainAnalyzer};
use psa_repro::core::monitor::{ActivationSchedule, ScheduleChange, SlidingConfig};
use psa_repro::core::mttd::{mttd_campaign, mttd_trial, mttd_trial_scheduled, MonitorTiming};
use psa_repro::core::scenario::Scenario;
use psa_repro::core::snr;
use psa_repro::dsp::peak;
use psa_repro::gatesim::trojan::TrojanKind;
use psa_repro::runtime::{Engine, MonitorCampaign, MonitorJob};
use std::sync::OnceLock;

fn chip() -> &'static TestChip {
    static CHIP: OnceLock<TestChip> = OnceLock::new();
    CHIP.get_or_init(TestChip::date24)
}

fn baseline() -> &'static Baseline {
    static BASELINE: OnceLock<Baseline> = OnceLock::new();
    BASELINE.get_or_init(|| {
        CrossDomainAnalyzer::new(chip())
            .unwrap()
            .learn_baseline(0xBA5E)
    })
}

#[test]
fn snr_values_land_in_paper_regime() {
    // Paper: PSA 41.0, single coil 30.5, ICR ~34, LF1 14.3 (dB).
    let rows = snr::snr_comparison(chip(), 3).expect("snr comparison");
    let get = |s: SensorSelect| {
        rows.iter()
            .find(|m| m.sensor == s)
            .map(|m| m.snr_db)
            .unwrap()
    };
    let psa = get(SensorSelect::Psa(10));
    let single = get(SensorSelect::SingleCoil);
    let icr = get(SensorSelect::IcrHh100);
    let lf1 = get(SensorSelect::LangerLf1);
    assert!((37.0..46.0).contains(&psa), "PSA {psa}");
    assert!((26.0..35.0).contains(&single), "single coil {single}");
    assert!((29.0..39.0).contains(&icr), "ICR {icr}");
    assert!((8.0..19.0).contains(&lf1), "LF1 {lf1}");
    // Paper ordering.
    assert!(psa > icr && icr > single && single > lf1);
}

#[test]
fn mttd_under_10ms_with_under_10_traces() {
    let timing = MonitorTiming::default();
    for kind in [TrojanKind::T4, TrojanKind::T3] {
        let scenario = Scenario::trojan_active(kind).with_seed(900);
        let r = mttd_trial(chip(), &scenario, baseline(), 10, &timing, 64).expect("trial runs");
        assert!(r.detected, "{kind} undetected");
        assert!(
            r.time_to_detect_s < 10.0e-3,
            "{kind} MTTD {} ms",
            r.time_to_detect_s * 1e3
        );
        assert!(r.traces_used < 10, "{kind} used {} traces", r.traces_used);
    }
}

#[test]
fn no_trojan_monitor_does_not_false_alarm() {
    let timing = MonitorTiming::default();
    let r = mttd_trial(
        chip(),
        &Scenario::baseline().with_seed(901),
        baseline(),
        10,
        &timing,
        12,
    )
    .expect("trial runs");
    assert!(!r.detected, "false alarm on quiet chip");
    assert_eq!(r.traces_used, 12);
}

/// The historical batch MTTD replay, reimplemented verbatim: acquire
/// one re-seeded record at a time, roll a 5-record window, render the
/// full-resolution spectrum, and compare against the baseline's
/// local-max envelope. The streaming path must reproduce this
/// **bit for bit** on coinciding (constant, active-from-record-0)
/// schedules.
fn batch_replay_reference(
    scenario: &Scenario,
    base: &[f64],
    sensor: usize,
    timing: &MonitorTiming,
    max_traces: usize,
) -> (bool, f64, usize) {
    let mut ctx = AcqContext::new(chip());
    let base_env = peak::local_max_envelope(base, 8);
    let mut fresh = TraceSet::default();
    let mut window = TraceSet::default();
    let mut elapsed = 0.0;
    for trace_idx in 0..max_traces {
        ctx.acquire_into(
            &scenario.clone().with_seed(scenario.seed + trace_idx as u64),
            SensorSelect::Psa(sensor),
            1,
            &mut fresh,
        )
        .expect("acquisition");
        elapsed += timing.acquisition_s;
        window.fs_hz = fresh.fs_hz;
        window.sensor = fresh.sensor;
        window.records.push(std::mem::take(&mut fresh.records[0]));
        if window.records.len() > calib::TRACES_PER_SPECTRUM {
            let evicted = window.records.remove(0);
            fresh.records[0] = evicted;
        }
        let spec = ctx.fullres_spectrum_db(&window).expect("spectrum");
        elapsed += timing.processing_s;
        let hits = peak::excess_over_baseline_db(&spec, &base_env, calib::DETECTION_THRESHOLD_DB);
        if !hits.is_empty() {
            return (true, elapsed, trace_idx + 1);
        }
    }
    (false, elapsed, max_traces)
}

#[test]
fn streaming_mttd_is_bit_identical_to_batch_replay() {
    let timing = MonitorTiming::default();
    // A detecting trial (T4) and a non-detecting one (T1 watched from
    // the silent corner sensor 0 would still detect; use a quiet
    // baseline stream instead).
    let cases = [
        (Scenario::trojan_active(TrojanKind::T4).with_seed(910), 6),
        (Scenario::baseline().with_seed(911), 4),
    ];
    for (scenario, max_traces) in cases {
        let r = mttd_trial(chip(), &scenario, baseline(), 10, &timing, max_traces)
            .expect("streaming trial");
        let (detected, elapsed, traces) = batch_replay_reference(
            &scenario,
            &baseline().per_sensor_db[10],
            10,
            &timing,
            max_traces,
        );
        assert_eq!(r.detected, detected, "{scenario:?}");
        assert_eq!(
            r.time_to_detect_s.to_bits(),
            elapsed.to_bits(),
            "MTTD bits differ: streaming {} vs batch {}",
            r.time_to_detect_s,
            elapsed
        );
        assert_eq!(r.traces_used, traces);
        assert_eq!(r.sensor, 10);
    }
}

#[test]
fn scheduled_trial_counts_mttd_from_activation() {
    let timing = MonitorTiming::default();
    let schedule = ActivationSchedule::trojan_at(TrojanKind::T4, 3, 12).with_seed(920);
    let mut ctx = AcqContext::new(chip());
    let r = mttd_trial_scheduled(&mut ctx, &schedule, baseline(), 10, &timing)
        .expect("scheduled trial");
    assert!(r.detected, "activation missed");
    // The clock starts at activation (record 3), not stream start.
    assert!(r.traces_used < 10, "used {}", r.traces_used);
    assert!(
        r.time_to_detect_s < 10.0e-3,
        "MTTD {} ms",
        r.time_to_detect_s * 1e3
    );
    assert!(r.time_to_detect_s > 0.0);
}

#[test]
fn mttd_campaign_detects_across_seeds_on_streaming_path() {
    // mttd_campaign now routes every trial through the streaming
    // monitor; the aggregate must keep the paper's regime.
    let (mean_s, mean_traces, rate) = mttd_campaign(
        chip(),
        |seed| Scenario::trojan_active(TrojanKind::T4).with_seed(seed),
        baseline(),
        10,
        3,
    )
    .expect("campaign");
    assert_eq!(rate, 1.0, "detection rate {rate}");
    assert!(mean_s < 10.0e-3, "mean MTTD {} ms", mean_s * 1e3);
    assert!(mean_traces < 10.0, "mean traces {mean_traces}");
}

#[test]
fn monitor_campaign_is_invariant_under_worker_count() {
    let jobs = vec![
        MonitorJob::new(
            "t4-activates",
            ActivationSchedule::trojan_at(TrojanKind::T4, 1, 5),
        )
        .with_sensors(&[0, 10])
        .with_config(SlidingConfig {
            min_window_records: 2,
            ..SlidingConfig::default()
        })
        .expecting(10)
        .with_seed(930),
        MonitorJob::new(
            "drift",
            ActivationSchedule::constant(Scenario::baseline(), 4).step(
                1,
                ScheduleChange::RampVdd {
                    to: 1.1,
                    over_records: 2,
                },
            ),
        )
        .with_config(SlidingConfig {
            recalibrate_after: Some(2),
            ..SlidingConfig::default()
        })
        .with_seed(931),
        MonitorJob::new(
            "key-rotation",
            ActivationSchedule::constant(Scenario::baseline(), 4)
                .step(2, ScheduleChange::SetKey([0x55; 16])),
        )
        .with_seed(932),
    ];
    let serial = MonitorCampaign::with_baseline(chip(), Engine::serial(), baseline().clone())
        .run(&jobs)
        .expect("serial campaign");
    let parallel = MonitorCampaign::with_baseline(chip(), Engine::new(3), baseline().clone())
        .run(&jobs)
        .expect("parallel campaign");
    // Full structural equality: identical events (bit-identical floats
    // compare equal), identical reports, identical order.
    assert_eq!(serial, parallel);

    // And the sessions behave as scripted: T4 detected and localized to
    // sensor 10; the legitimate drift and key-rotation streams stay
    // alarm-free.
    assert!(serial[0].report.detected);
    assert_eq!(serial[0].report.localized_sensor, Some(10));
    assert_eq!(serial[0].report.localization_correct, Some(true));
    assert_eq!(serial[1].report.alarms, 0, "drift false-alarmed");
    assert!(
        serial[1].report.recalibrations > 0,
        "drift never recalibrated"
    );
    assert_eq!(serial[2].report.alarms, 0, "key rotation false-alarmed");
}
