//! Programming the sensor array: shapes, sizes, impedance, overhead,
//! and tamper checks.
//!
//! ```text
//! cargo run --release --example psa_programming
//! ```
//!
//! Walks the PSA hardware model itself (paper Secs. III–V): program a
//! simple rectangle, the Fig 1b 2-turn coil, and a preset 6-turn sensor;
//! inspect series resistance and |Z(f)|; account for area/routing
//! overhead; and run the Sec. IV tamper-resilience checks.

use psa_repro::array::coil::{extract_coil, program_spiral, program_two_turn};
use psa_repro::array::impedance::CoilImpedance;
use psa_repro::array::lattice::Lattice;
use psa_repro::array::overhead::overhead;
use psa_repro::array::program::{decode_psa_sel, SwitchMatrix};
use psa_repro::array::tgate::TGate;
use psa_repro::array::validate::structural_check;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lattice = Lattice::date24();
    let tgate = TGate::date24();
    println!(
        "lattice: {}x{} wires, {} T-gate switches, {:.1} um pitch",
        lattice.rows(),
        lattice.cols(),
        lattice.switch_count(),
        lattice.pitch_um()
    );

    // 1. A plain rectangular coil.
    let mut m = SwitchMatrix::new(&lattice);
    m.program_rectangle(4, 4, 16, 16)?;
    let coil = extract_coil(&lattice, &m)?;
    println!(
        "\nrectangle 12x12 nodes: {} switches, {:.0} um wire, R = {:.1} ohm",
        coil.switch_count(),
        coil.wire_length_um(),
        coil.series_resistance_ohm(&tgate, 1.0, 25.0)
    );

    // 2. The Fig 1b two-turn coil.
    program_two_turn(&mut m, 4, 4, 20, 20)?;
    let two = extract_coil(&lattice, &m)?;
    println!(
        "two-turn (Fig 1b):     {} switches, winding area {:.0} um^2",
        two.switch_count(),
        two.enclosed_area_um2()
    );

    // 3. A 6-turn spiral like the preset sensors.
    program_spiral(&mut m, 0, 0, 12, 12, 6)?;
    let spiral = extract_coil(&lattice, &m)?;
    let z = CoilImpedance::of_coil(&spiral, &tgate, 1.0, 25.0, lattice.wire_width_um());
    println!(
        "6-turn spiral:         {} switches, |Z| = {:.0} ohm at 48 MHz (self-resonance {:.1} GHz)",
        spiral.switch_count(),
        z.magnitude_ohm(48.0e6),
        z.self_resonance_hz() / 1e9
    );

    // 4. The decoder presets.
    decode_psa_sel(&mut m, 10)?;
    let sensor10 = extract_coil(&lattice, &m)?;
    println!(
        "preset sensor 10:      {} switches via PSA_sel = 10",
        sensor10.switch_count()
    );

    // 5. Overhead accounting (paper Sec. V-B).
    let report = overhead(&lattice, &tgate, 1000.0 * 1000.0, 1.0);
    println!(
        "\noverhead: {:.1}% area ({:.1}% T-gates + {:.1}% control), {:.2}% top routing (single coil: {:.0}%), {:.0} uW leakage",
        report.total_area_pct,
        report.tgate_area_pct,
        report.control_area_pct,
        report.routing_capacity_loss_pct,
        report.single_coil_routing_loss_pct,
        report.leakage_power_uw
    );

    // 6. Tamper resilience (paper Sec. IV): clean pass, then injected
    // faults.
    let clean = structural_check(&lattice, |_, _| {})?;
    println!("\ntamper check (untouched):        {clean}");
    let open = structural_check(&lattice, |mx, sensor| {
        if sensor == 10 {
            mx.open(16, 28).expect("valid node");
        }
    })?;
    println!("tamper check (cut switch):       {open}");
    let short = structural_check(&lattice, |mx, sensor| {
        if sensor == 3 {
            mx.program_rectangle(30, 0, 34, 4).expect("valid nodes");
        }
    })?;
    println!("tamper check (stuck-on switches): {short}");
    Ok(())
}
