//! Compares the PSA cross-domain detector against the literature
//! baselines of Table I on the same Trojan scenarios.
//!
//! ```text
//! cargo run --release --example method_comparison
//! ```
//!
//! Runs each detector (PSA cross-domain, Euclidean statistics on the
//! external probe and the single on-chip coil, PCA+K-means on
//! backscatter captures) against every Trojan and prints who detected
//! what and at what trace cost.

use psa_repro::core::acquisition::AcqContext;
use psa_repro::core::chip::TestChip;
use psa_repro::core::detector::{
    BackscatterDetector, CrossDomainDetector, Detector, EuclideanDetector,
};
use psa_repro::core::scenario::Scenario;
use psa_repro::gatesim::trojan::TrojanKind;

fn main() {
    println!("building chip...");
    let chip = TestChip::date24();
    println!("learning PSA baseline...");
    let cross = CrossDomainDetector::new(&chip, 0xBA5E);
    let probe = EuclideanDetector::external_probe(40);
    let coil = EuclideanDetector::single_coil(40);
    let backscatter = BackscatterDetector::default();
    let detectors: [&dyn Detector; 4] = [&cross, &probe, &coil, &backscatter];

    // One shared context across all 16 attempts (per the Detector
    // contract, `detect` is one-shot-only: it allocates fresh scratch
    // on every call).
    let mut ctx = AcqContext::new(&chip);
    println!();
    for det in detectors {
        println!("{}:", det.name());
        for kind in TrojanKind::ALL {
            let scenario = Scenario::trojan_active(kind).with_seed(1234);
            let out = det.detect_with(&mut ctx, &scenario).expect("detector runs");
            let localized = out
                .localized_sensor
                .map(|s| format!("sensor {s}"))
                .unwrap_or_else(|| "-".to_string());
            let identified = out
                .identified
                .map(|k| k.to_string())
                .unwrap_or_else(|| "-".to_string());
            println!(
                "  {kind}: detected={:<5} traces={:<4} localized={localized:<9} identified={identified}",
                out.detected, out.traces_used
            );
        }
    }
    println!("\n(paper Table I: PSA detects all four with <10 traces and localizes;");
    println!(" prior methods need 100 to >10,000 traces and cannot localize)");
}
