//! Prints Trojan signatures for template keys and the test key.
use psa_core::acquisition::Acquisition;
use psa_core::chip::TestChip;
use psa_core::identify::acquire_signature;
use psa_core::scenario::Scenario;
use psa_gatesim::trojan::TrojanKind;

fn main() {
    let chip = TestChip::date24();
    let acq = Acquisition::new(&chip);
    let keys: [(&str, [u8; 16], u64); 2] = [
        ("ref0", [0x81; 16], 0xBEEF),
        ("test", Scenario::DEFAULT_KEY, 101),
    ];
    for kind in TrojanKind::ALL {
        for (name, key, seed) in keys {
            let scen = Scenario::trojan_active(kind).with_key(key).with_seed(seed);
            let base = Scenario::baseline().with_key(key).with_seed(seed);
            let sig = acquire_signature(&chip, &acq, &scen, &base, 10, 48.0e6).unwrap();
            let v: Vec<String> = sig.to_vec().iter().map(|x| format!("{x:8.3}")).collect();
            println!("{kind} {name}: [{}]", v.join(", "));
        }
    }
    println!("features: modF(MHz) modProm(dB) lfFrac period(us) periodicity depth kurt telegraph satOff(MHz) pedW(MHz)");
}
