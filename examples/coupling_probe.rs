//! Prints each source's strongest-coupling sensors (localization ground truth).
use psa_core::chip::{SensorSelect, TestChip};
use psa_gatesim::activity::Source;

fn main() {
    let chip = TestChip::date24();
    let cols: Vec<Vec<f64>> = (0..16)
        .map(|s| chip.couplings_for(SensorSelect::Psa(s)).unwrap())
        .collect();
    for (i, src) in Source::ALL.iter().enumerate() {
        let mut ks: Vec<(usize, f64)> = (0..16).map(|s| (s, cols[s][i].abs())).collect();
        ks.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!(
            "{src:?}: top sensors {:?}",
            ks.iter()
                .take(4)
                .map(|(s, k)| (*s, format!("{k:.2e}")))
                .collect::<Vec<_>>()
        );
    }
}
