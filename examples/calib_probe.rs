//! Calibration probe: prints the Eq. (1) SNR of every sensing selection.
use psa_core::chip::{SensorSelect, TestChip};
use psa_core::snr::snr_comparison;

fn main() {
    let chip = TestChip::date24();
    for m in snr_comparison(&chip, 3).expect("snr comparison") {
        println!(
            "{:-35} signal {:.3e} V  noise {:.3e} V  SNR {:+.1} dB",
            m.label, m.signal_vrms, m.noise_vrms, m.snr_db
        );
    }
    let _ = SensorSelect::Psa(0);
}
