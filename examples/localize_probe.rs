//! Full-pipeline probe: verdicts for every trojan.
use psa_core::chip::TestChip;
use psa_core::cross_domain::CrossDomainAnalyzer;
use psa_core::scenario::Scenario;
use psa_gatesim::trojan::TrojanKind;

fn main() {
    let chip = TestChip::date24();
    let analyzer = CrossDomainAnalyzer::new(&chip).expect("reference template library");
    let baseline = analyzer.learn_baseline(42);
    // No-trojan control.
    let v = analyzer
        .analyze(&Scenario::baseline().with_seed(77), &baseline)
        .unwrap();
    println!(
        "control: detected={} top-energy={:.1}",
        v.detected, v.ranking[0].energy_db
    );
    for kind in TrojanKind::ALL {
        let v = analyzer
            .analyze(
                &Scenario::trojan_active(kind).with_seed(101 + kind.index() as u64),
                &baseline,
            )
            .unwrap();
        println!(
            "{kind}: detected={} localized={:?} freq={:?} identified={:?} dist={:?} top3={:?}",
            v.detected,
            v.localized_sensor,
            v.prominent_freq_hz.map(|f| (f / 1e6 * 10.0).round() / 10.0),
            v.identified,
            v.identification_distance
                .map(|d| (d * 100.0).round() / 100.0),
            v.ranking
                .iter()
                .take(3)
                .map(|r| (r.sensor, r.energy_db.round()))
                .collect::<Vec<_>>()
        );
    }
}
