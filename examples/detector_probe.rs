//! Per-trojan outcomes for each baseline detector.
use psa_repro::core::acquisition::AcqContext;
use psa_repro::core::chip::TestChip;
use psa_repro::core::detector::{BackscatterDetector, Detector, EuclideanDetector};
use psa_repro::core::scenario::Scenario;
use psa_repro::gatesim::trojan::TrojanKind;

fn main() {
    let chip = TestChip::date24();
    let probe = EuclideanDetector::external_probe(60);
    let coil = EuclideanDetector::single_coil(60);
    let back = BackscatterDetector::default();
    let dets: [&dyn Detector; 3] = [&probe, &coil, &back];
    // One shared context: `detect` would allocate fresh scratch buffers
    // for every one of the 24 attempts; `detect_with` recycles them.
    let mut ctx = AcqContext::new(&chip);
    for det in dets {
        print!("{}: ", det.name());
        for kind in TrojanKind::ALL {
            for seed in [7000u64, 7031] {
                let out = det
                    .detect_with(&mut ctx, &Scenario::trojan_active(kind).with_seed(seed))
                    .unwrap();
                print!("{kind}({}) ", if out.detected { "Y" } else { "n" });
            }
        }
        println!();
    }
}
