//! Run-time monitoring scenario: a Trojan activates mid-operation and
//! the monitor must flag it within the paper's 10 ms budget.
//!
//! ```text
//! cargo run --release --example runtime_monitor
//! ```
//!
//! Models the deployed configuration of Sec. II-A: the PSA watches
//! sensor 10 while the chip encrypts; T1's 21-bit counter trigger fires
//! and the monitor's acquire-compare loop measures the time from
//! activation to detection (MTTD) for each Trojan.

use psa_repro::core::chip::TestChip;
use psa_repro::core::cross_domain::CrossDomainAnalyzer;
use psa_repro::core::mttd::{mttd_trial, MonitorTiming};
use psa_repro::core::scenario::Scenario;
use psa_repro::gatesim::trojan::TrojanKind;

fn main() {
    println!("building chip and learning baseline...");
    let chip = TestChip::date24();
    let analyzer = CrossDomainAnalyzer::new(&chip).expect("reference template library");
    let baseline = analyzer.learn_baseline(0xBA5E);
    let timing = MonitorTiming::default();

    println!(
        "monitor loop: {:.0} us acquisition + {:.0} us processing per trace\n",
        timing.acquisition_s * 1e6,
        timing.processing_s * 1e6
    );
    println!("trojan  detected  MTTD        traces   (paper: <10 ms, <10 traces)");
    println!("------------------------------------------------------------------");
    for kind in TrojanKind::ALL {
        let scenario = Scenario::trojan_active(kind).with_seed(991 + kind.index() as u64);
        let result = mttd_trial(&chip, &scenario, &baseline, 10, &timing, 64).expect("trial runs");
        println!(
            "{:<7} {:<9} {:>7.2} ms  {:>6}",
            kind.to_string(),
            result.detected,
            result.time_to_detect_s * 1e3,
            result.traces_used
        );
        assert!(result.detected, "{kind} must be detected at run time");
        assert!(
            result.time_to_detect_s < 10.0e-3,
            "{kind} exceeded the 10 ms budget"
        );
    }
    println!("\nall four Trojans detected within the paper's 10 ms MTTD budget");
}
