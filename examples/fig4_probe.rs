//! Quick Fig-4 probe: full-resolution excess at 48/84 MHz per trojan,
//! sensors 10 and 0.
use psa_core::acquisition::Acquisition;
use psa_core::chip::{SensorSelect, TestChip};
use psa_core::scenario::Scenario;
use psa_gatesim::trojan::TrojanKind;

fn main() {
    let chip = TestChip::date24();
    let acq = Acquisition::new(&chip);
    let spec_of = |scen: &Scenario, s: usize| {
        let t = acq.acquire(scen, SensorSelect::Psa(s), 5).unwrap();
        acq.fullres_spectrum_db(&t).unwrap()
    };
    for sensor in [10usize, 0] {
        let base = spec_of(&Scenario::baseline(), sensor);
        for kind in TrojanKind::ALL {
            let act = spec_of(&Scenario::trojan_active(kind), sensor);
            let b48 = acq.fullres_freq_bin(48.0e6);
            let b84 = acq.fullres_freq_bin(84.0e6);
            // search +-3 bins for the line
            let excess = |b: usize| {
                (b - 3..=b + 3)
                    .map(|k| act[k] - base[k])
                    .fold(f64::MIN, f64::max)
            };
            println!(
                "sensor {sensor} {kind}: excess 48 MHz {:+.1} dB, 84 MHz {:+.1} dB",
                excess(b48),
                excess(b84)
            );
        }
    }
}
