//! Quickstart: detect, localize, and identify a hardware Trojan at
//! run time, golden-model free.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the simulated DATE'24 test chip, learns the run-time baseline
//! from the same chip while its Trojans are dormant, then activates the
//! *small* CDMA Trojan T3 (329 cells, 1.14 % of the chip — the one
//! external probes and single-coil sensors miss) and runs the paper's
//! cross-domain analysis.

use psa_repro::core::chip::TestChip;
use psa_repro::core::cross_domain::CrossDomainAnalyzer;
use psa_repro::core::scenario::Scenario;
use psa_repro::gatesim::trojan::TrojanKind;

fn main() {
    println!("building the simulated AES-128 test chip (placement + EM couplings)...");
    let chip = TestChip::date24();
    let analyzer = CrossDomainAnalyzer::new(&chip).expect("reference template library");

    println!("learning the run-time baseline (Trojans dormant, same chip)...");
    let baseline = analyzer.learn_baseline(42);

    println!("activating T3 (CDMA key-leak Trojan, 1.14 % of cells) and analyzing...");
    let verdict = analyzer
        .analyze(
            &Scenario::trojan_active(TrojanKind::T3).with_seed(7),
            &baseline,
        )
        .expect("analysis succeeds on the built-in chip");

    println!();
    println!("detected:            {}", verdict.detected);
    if let Some(sensor) = verdict.localized_sensor {
        println!("localized to sensor: {sensor} (paper: sensor 10)");
    }
    if let Some(region) = verdict.localized_region {
        println!("die region:          {region}");
    }
    if let Some(freq) = verdict.prominent_freq_hz {
        println!(
            "prominent component: {:.1} MHz (paper: 48 MHz sideband)",
            freq / 1.0e6
        );
    }
    if let Some(kind) = verdict.identified {
        println!(
            "identified as:       {kind} (distance {:.2})",
            verdict.identification_distance.unwrap_or(f64::NAN)
        );
    }
    println!(
        "traces per sensor:   {} (paper: fewer than ten)",
        verdict.traces_per_sensor
    );
}
